// Additional property and edge-case coverage across modules: degenerate
// strategies (one bucket / unit shares) reduce to serial enumeration,
// Theorem 4.1 on the hypercube, order-structure invariants, engine byte
// accounting, decomposition of larger cycles and cliques, and the
// interaction of cycle CQs with the Section-3 CQs for C4.

#include <cmath>

#include <gtest/gtest.h>

#include "core/subgraph_enumerator.h"
#include "cq/cq_generation.h"
#include "cycles/cycle_cqs.h"
#include "graph/generators.h"
#include "graph/node_order.h"
#include "cq/cq_evaluator.h"
#include "serial/matcher.h"
#include "shares/cost_expression.h"
#include "serial/convertible.h"
#include "serial/decomposition.h"
#include "shares/share_optimizer.h"
#include "tests/test_util.h"
#include "util/combinatorics.h"

namespace smr {
namespace {

TEST(DegenerateStrategies, OneBucketEqualsSerial) {
  const Graph g = ErdosRenyi(20, 60, 4);
  for (const auto& pattern :
       {SampleGraph::Triangle(), SampleGraph::Square(),
        SampleGraph::Lollipop()}) {
    const SubgraphEnumerator enumerator(pattern);
    const auto metrics = enumerator.RunBucketOriented(g, 1, 1, nullptr);
    EXPECT_EQ(metrics.outputs, enumerator.RunSerial(g, nullptr))
        << pattern.ToString();
    EXPECT_EQ(metrics.key_value_pairs, g.num_edges());
    EXPECT_EQ(metrics.key_space, 1u);
  }
}

TEST(DegenerateStrategies, UnitSharesEqualsSerial) {
  const Graph g = ErdosRenyi(18, 50, 6);
  for (const auto& pattern :
       {SampleGraph::Triangle(), SampleGraph::Square()}) {
    const SubgraphEnumerator enumerator(pattern);
    const std::vector<int> shares(pattern.num_vars(), 1);
    const auto metrics = enumerator.RunVariableOriented(g, shares, 1, nullptr);
    EXPECT_EQ(metrics.outputs, enumerator.RunSerial(g, nullptr))
        << pattern.ToString();
    EXPECT_EQ(metrics.key_space, 1u);
  }
}

TEST(Hypercube, IsRegularWithKnownAutomorphisms) {
  const SampleGraph q3 = SampleGraph::Hypercube(3);
  EXPECT_EQ(q3.num_vars(), 8);
  EXPECT_EQ(q3.num_edges(), 12);
  EXPECT_TRUE(q3.IsRegular());
  EXPECT_TRUE(q3.IsConnected());
  // |Aut(Q_d)| = 2^d * d!.
  EXPECT_EQ(q3.Automorphisms().size(), 8u * 6u);
  EXPECT_EQ(SampleGraph::Hypercube(2).Automorphisms().size(), 8u);  // = C4
}

TEST(Hypercube, Theorem41EqualShares) {
  // Theorem 4.1 explicitly covers hypercubes: single-CQ optimization gives
  // every variable share k^{1/8}.
  const SampleGraph q3 = SampleGraph::Hypercube(3);
  std::vector<int> identity_order(q3.num_vars());
  for (int i = 0; i < q3.num_vars(); ++i) identity_order[i] = i;
  const auto cq = ConjunctiveQuery::ForOrder(q3, identity_order);
  const auto solution =
      OptimizeShares(CostExpression::ForSingleCq(cq), 6561);  // 3^8
  for (double share : solution.shares) {
    EXPECT_NEAR(share, std::pow(6561.0, 1.0 / 8.0), 0.05);
  }
}

TEST(NodeOrderProperties, ReversedIsInvolution) {
  const Graph g = ErdosRenyi(30, 60, 1);
  const NodeOrder order = NodeOrder::ByDegree(g);
  const NodeOrder twice = order.Reversed().Reversed();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(order.Rank(u), twice.Rank(u));
  }
}

TEST(NodeOrderProperties, RanksAreAPermutation) {
  const BucketHasher hasher(7, 3);
  const NodeOrder order = NodeOrder::ByBucket(50, hasher);
  std::vector<bool> seen(50, false);
  for (NodeId u = 0; u < 50; ++u) {
    ASSERT_LT(order.Rank(u), 50u);
    ASSERT_FALSE(seen[order.Rank(u)]);
    seen[order.Rank(u)] = true;
  }
}

TEST(CycleCqsVsGeneral, SquareIsC4BothWays) {
  // For C4 both constructions need 3 CQs; together they find the same
  // squares.
  EXPECT_EQ(CycleCqs(4).size(), 3u);
  EXPECT_EQ(CqsForSample(SampleGraph::Cycle(4)).size(), 3u);
  const Graph g = ErdosRenyi(16, 44, 9);
  const CqEvaluator evaluator(g, NodeOrder::Identity(g.num_nodes()));
  uint64_t via_runs = 0;
  for (const auto& entry : CycleCqs(4)) {
    via_runs += evaluator.Evaluate(entry.cq, nullptr, nullptr);
  }
  const uint64_t via_orders =
      evaluator.EvaluateAll(CqsForSample(SampleGraph::Cycle(4)), nullptr,
                            nullptr);
  EXPECT_EQ(via_runs, via_orders);
}

TEST(Decomposition, LargerPatterns) {
  // C7 and C9: odd Hamiltonian in one part -> (0, p/2).
  for (int p : {7, 9}) {
    const auto decomposition = DecomposeSample(SampleGraph::Cycle(p));
    ASSERT_TRUE(decomposition.has_value());
    const SerialCost cost = CostOfDecomposition(*decomposition);
    EXPECT_DOUBLE_EQ(cost.alpha, 0);
    EXPECT_DOUBLE_EQ(cost.beta, p / 2.0);
  }
  // K5: single odd-Hamiltonian part, (0, 2.5).
  const auto k5 = DecomposeSample(SampleGraph::Clique(5));
  ASSERT_TRUE(k5.has_value());
  EXPECT_DOUBLE_EQ(CostOfDecomposition(*k5).beta, 2.5);
  EXPECT_EQ(k5->IsolatedCount(), 0);
}

TEST(Decomposition, EnumerationOnStarAndTwoEdges) {
  // Patterns with isolated-node parts exercise the n-scan path.
  const Graph g = ErdosRenyi(12, 26, 15);
  for (const auto& pattern :
       {SampleGraph::Star(4), SampleGraph(5, {{0, 1}, {2, 3}})}) {
    const auto decomposition = DecomposeSample(pattern);
    ASSERT_TRUE(decomposition.has_value());
    CollectingSink sink;
    EnumerateByDecomposition(pattern, *decomposition, g, &sink, nullptr);
    EXPECT_EQ(KeysOf(sink, pattern), GroundTruthKeys(pattern, g))
        << pattern.ToString();
  }
}

TEST(Engine, BytesScaleWithValueSize) {
  const Graph g = ErdosRenyi(20, 40, 2);
  const SubgraphEnumerator enumerator(SampleGraph::Triangle());
  const auto metrics = enumerator.RunBucketOriented(g, 3, 1, nullptr);
  EXPECT_EQ(metrics.bytes,
            metrics.key_value_pairs * (sizeof(uint64_t) + sizeof(Edge)));
}

TEST(SharesOptimizer, PathPatternHasDominatedEndpoints) {
  // In the path a-b-c-d evaluated by one CQ, the endpoint variables are
  // dominated by their unique neighbors.
  std::vector<int> identity = {0, 1, 2, 3};
  const auto cq = ConjunctiveQuery::ForOrder(SampleGraph::Path(4), identity);
  const auto dominated =
      CostExpression::ForSingleCq(cq).DominatedVars();
  EXPECT_TRUE(dominated[0]);
  EXPECT_TRUE(dominated[3]);
  EXPECT_FALSE(dominated[1]);
  EXPECT_FALSE(dominated[2]);
}

TEST(SharesOptimizer, CostDecreasesWithMoreReducersPerEdgeFixed) {
  // Communication per edge grows with k (more replication), but reducers
  // get smaller; sanity-check monotonicity of the optimizer output in k.
  const auto cqs = CqsForSample(SampleGraph::Square());
  const auto expression = CostExpression::ForCqSet(cqs);
  double last = 0;
  for (double k : {16.0, 256.0, 4096.0}) {
    const double cost = OptimizeShares(expression, k).cost_per_edge;
    EXPECT_GT(cost, last);
    last = cost;
  }
}

TEST(GeneratorEdgeCases, SmallGraphs) {
  EXPECT_THROW(ErdosRenyi(1, 0, 1), std::invalid_argument);
  EXPECT_THROW(ErdosRenyi(4, 100, 1), std::invalid_argument);
  EXPECT_THROW(CycleGraph(2), std::invalid_argument);
  EXPECT_THROW(RegularTree(1, 2), std::invalid_argument);
  EXPECT_EQ(CompleteGraph(2).num_edges(), 1u);
}

TEST(MatcherEdgeCases, PatternLargerThanGraph) {
  const Graph tiny = CompleteGraph(3);
  EXPECT_EQ(CountInstances(SampleGraph::Clique(4), tiny), 0u);
  EXPECT_EQ(CountInstances(SampleGraph::Cycle(5), tiny), 0u);
}

TEST(MatcherEdgeCases, SingleEdgePattern) {
  const Graph g = ErdosRenyi(10, 20, 3);
  const SampleGraph edge(2, {{0, 1}});
  EXPECT_EQ(CountInstances(edge, g), g.num_edges());
}

TEST(ConvertibleAlgebra, StarsAreTight) {
  // Star(p): decomposition = 1 edge + (p-2) isolated nodes =>
  // (p-2, 1)-algorithm; p <= (p-2) + 2 holds with equality.
  for (int p : {3, 4, 5, 6}) {
    const SerialCost cost = BestDecompositionCost(SampleGraph::Star(p));
    EXPECT_DOUBLE_EQ(cost.alpha, p - 2);
    EXPECT_DOUBLE_EQ(cost.beta, 1);
    EXPECT_TRUE(IsConvertible(cost, p));
  }
}

}  // namespace
}  // namespace smr
