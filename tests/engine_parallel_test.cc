// Determinism tests for the parallel engine: a declared round run through
// JobDriver, and every map-reduce strategy built on the engine, must
// produce byte-identical metrics and identical instances — in the same
// emission order — for 1, 2, and 8 threads.

#include <cstdint>
#include <set>
#include <span>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/subgraph_enumerator.h"
#include "core/triangle_algorithms.h"
#include "core/two_round_triangles.h"
#include "directed/directed_enumeration.h"
#include "graph/generators.h"
#include "graph/sample_graph.h"
#include "labeled/labeled_enumeration.h"
#include "mapreduce/job.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace smr {
namespace {

const unsigned kThreadCounts[] = {1, 2, 8};

// Both shuffle implementations must honor the determinism contract; the
// strategy harness below runs each strategy under both at every thread
// count.
const ShuffleMode kShuffleModes[] = {ShuffleMode::kSort,
                                     ShuffleMode::kPartitioned};

/// Runs one int round under `policy` through the declarative API.
template <typename Map, typename Reduce>
MapReduceMetrics RunIntRound(const std::vector<int>& inputs, Map map_fn,
                             Reduce reduce_fn, InstanceSink* sink,
                             uint64_t key_space,
                             const ExecutionPolicy& policy) {
  JobDriver driver(policy);
  return driver.RunRound(RoundSpec<int, int>{"test", map_fn, reduce_fn,
                                             key_space, {}},
                         inputs, sink);
}

DirectedGraph RandomDigraph(NodeId n, size_t m, uint64_t seed) {
  Rng rng(seed);
  std::set<Arc> seen;
  std::vector<Arc> arcs;
  while (arcs.size() < m) {
    const NodeId u = static_cast<NodeId>(rng.Below(n));
    const NodeId v = static_cast<NodeId>(rng.Below(n));
    if (u == v) continue;
    if (!seen.insert({u, v}).second) continue;
    arcs.emplace_back(u, v);
  }
  return DirectedGraph(n, std::move(arcs));
}

TEST(EngineParallel, RawRoundIdenticalAcrossThreadCounts) {
  // A round with skewed groups: key = value % 7, so group sizes differ and
  // chunk boundaries land mid-stream.
  std::vector<int> inputs(1000);
  for (size_t i = 0; i < inputs.size(); ++i) inputs[i] = static_cast<int>(i);

  auto map_fn = [](const int& value, Emitter<int>* out) {
    out->Emit(static_cast<uint64_t>(value % 7), value);
    if (value % 3 == 0) out->Emit(static_cast<uint64_t>(value % 5), -value);
  };
  auto reduce_fn = [](uint64_t key, std::span<const int> values,
                      ReduceContext* context) {
    context->cost->edges_scanned += values.size();
    for (const int v : values) {
      if (v >= 0 && static_cast<uint64_t>(v % 7) == key) {
        const NodeId node = static_cast<NodeId>(v);
        context->EmitInstance(std::span<const NodeId>(&node, 1));
      }
    }
  };

  CollectingSink serial_sink;
  const MapReduceMetrics serial = RunIntRound(
      inputs, map_fn, reduce_fn, &serial_sink, 7, ExecutionPolicy::Serial());
  ASSERT_GT(serial.outputs, 0u);

  for (const unsigned threads : kThreadCounts) {
    for (const ShuffleMode mode : kShuffleModes) {
      CollectingSink sink;
      const MapReduceMetrics metrics = RunIntRound(
          inputs, map_fn, reduce_fn, &sink, 7,
          ExecutionPolicy::WithThreads(threads).WithShuffle(mode));
      EXPECT_EQ(metrics, serial) << "threads=" << threads;
      // Emission order, not just multiset, must match the serial engine.
      EXPECT_EQ(sink.assignments(), serial_sink.assignments())
          << "threads=" << threads;
    }
  }
}

TEST(EngineParallel, MoreThreadsThanKeysOrInputs) {
  const std::vector<int> inputs = {1, 2, 3};
  auto map_fn = [](const int& value, Emitter<int>* out) {
    out->Emit(0, value);
  };
  auto reduce_fn = [](uint64_t, std::span<const int> values,
                      ReduceContext* context) {
    context->cost->candidates += values.size();
  };
  const MapReduceMetrics serial = RunIntRound(
      inputs, map_fn, reduce_fn, nullptr, 1, ExecutionPolicy::Serial());
  const MapReduceMetrics wide = RunIntRound(
      inputs, map_fn, reduce_fn, nullptr, 1, ExecutionPolicy::WithThreads(64));
  EXPECT_EQ(wide, serial);
  EXPECT_EQ(wide.distinct_keys, 1u);
}

TEST(EngineParallel, EmptyInputAllThreadCounts) {
  const std::vector<int> inputs;
  auto map_fn = [](const int&, Emitter<int>*) {};
  auto reduce_fn = [](uint64_t, std::span<const int>, ReduceContext*) {};
  for (const unsigned threads : kThreadCounts) {
    const MapReduceMetrics metrics =
        RunIntRound(inputs, map_fn, reduce_fn, nullptr, 9,
                    ExecutionPolicy::WithThreads(threads));
    EXPECT_EQ(metrics.key_value_pairs, 0u);
    EXPECT_EQ(metrics.distinct_keys, 0u);
    EXPECT_EQ(metrics.key_space, 9u);
  }
}

// Shared harness: run `strategy` at every thread count and require metrics
// and sorted instance keys identical to the 1-thread run.
template <typename Strategy>
void ExpectStrategyDeterministic(const SampleGraph& pattern,
                                 const Strategy& strategy) {
  CollectingSink serial_sink;
  const MapReduceMetrics serial =
      strategy(ExecutionPolicy::Serial(), &serial_sink);
  const std::vector<InstanceKey> serial_keys = KeysOf(serial_sink, pattern);
  ASSERT_GT(serial.outputs, 0u) << "strategy found no instances; the "
                                   "determinism check would be vacuous";

  for (const unsigned threads : kThreadCounts) {
    for (const ShuffleMode mode : kShuffleModes) {
      CollectingSink sink;
      const MapReduceMetrics metrics = strategy(
          ExecutionPolicy::WithThreads(threads).WithShuffle(mode), &sink);
      EXPECT_EQ(metrics, serial)
          << "threads=" << threads << " sort=" << (mode == ShuffleMode::kSort);
      EXPECT_EQ(KeysOf(sink, pattern), serial_keys)
          << "threads=" << threads << " sort=" << (mode == ShuffleMode::kSort);
    }
  }
}

TEST(EngineParallel, BucketOrientedTriangle) {
  const Graph g = ErdosRenyi(300, 1800, 11);
  const SampleGraph pattern = SampleGraph::Triangle();
  const SubgraphEnumerator enumerator(pattern);
  ExpectStrategyDeterministic(
      pattern, [&](const ExecutionPolicy& policy, InstanceSink* sink) {
        return enumerator.RunBucketOriented(g, 4, 1, sink, policy);
      });
}

TEST(EngineParallel, BucketOrientedSquare) {
  const Graph g = ErdosRenyi(120, 900, 5);
  const SampleGraph pattern = SampleGraph::Square();
  const SubgraphEnumerator enumerator(pattern);
  ExpectStrategyDeterministic(
      pattern, [&](const ExecutionPolicy& policy, InstanceSink* sink) {
        return enumerator.RunBucketOriented(g, 3, 2, sink, policy);
      });
}

TEST(EngineParallel, BucketOrientedLollipop) {
  const Graph g = ErdosRenyi(100, 800, 9);
  const SampleGraph pattern = SampleGraph::Lollipop();
  const SubgraphEnumerator enumerator(pattern);
  ExpectStrategyDeterministic(
      pattern, [&](const ExecutionPolicy& policy, InstanceSink* sink) {
        return enumerator.RunBucketOriented(g, 3, 4, sink, policy);
      });
}

TEST(EngineParallel, VariableOrientedTriangle) {
  const Graph g = ErdosRenyi(250, 1500, 3);
  const SampleGraph pattern = SampleGraph::Triangle();
  const SubgraphEnumerator enumerator(pattern);
  ExpectStrategyDeterministic(
      pattern, [&](const ExecutionPolicy& policy, InstanceSink* sink) {
        return enumerator.RunVariableOriented(g, {3, 3, 3}, 1, sink, policy);
      });
}

TEST(EngineParallel, TriangleAlgorithms) {
  const Graph g = ErdosRenyi(400, 2400, 17);
  const SampleGraph pattern = SampleGraph::Triangle();
  ExpectStrategyDeterministic(
      pattern, [&](const ExecutionPolicy& policy, InstanceSink* sink) {
        return PartitionTriangles(g, 5, 1, sink, policy);
      });
  ExpectStrategyDeterministic(
      pattern, [&](const ExecutionPolicy& policy, InstanceSink* sink) {
        return MultiwayJoinTriangles(g, 3, 1, sink, policy);
      });
  ExpectStrategyDeterministic(
      pattern, [&](const ExecutionPolicy& policy, InstanceSink* sink) {
        return OrderedBucketTriangles(g, 4, 1, sink, policy);
      });
}

TEST(EngineParallel, TwoRoundTriangles) {
  const Graph g = ErdosRenyi(400, 2400, 23);
  const SampleGraph pattern = SampleGraph::Triangle();
  const NodeOrder order = NodeOrder::ByDegree(g);
  ExpectStrategyDeterministic(
      pattern, [&](const ExecutionPolicy& policy, InstanceSink* sink) {
        return TwoRoundTriangles(g, order, sink, policy).round2;
      });
}

TEST(EngineParallel, LabeledBucketOriented) {
  // Mixed-label triangle: exercises the labeled reducer's nested sink and
  // cross-CQ state under concurrency.
  Rng rng(19);
  std::vector<LabeledEdge> edges;
  std::set<std::pair<NodeId, NodeId>> seen;
  while (edges.size() < 700) {
    NodeId u = static_cast<NodeId>(rng.Below(120));
    NodeId v = static_cast<NodeId>(rng.Below(120));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (!seen.insert({u, v}).second) continue;
    edges.push_back({u, v, static_cast<EdgeLabel>(rng.Below(2))});
  }
  const LabeledGraph g(120, std::move(edges));
  const LabeledSampleGraph pattern(3, {{0, 1, 0}, {1, 2, 0}, {0, 2, 1}});

  CollectingSink serial_sink;
  const MapReduceMetrics serial = LabeledBucketOrientedEnumerate(
      pattern, g, 3, 1, &serial_sink, ExecutionPolicy::Serial());
  ASSERT_GT(serial.outputs, 0u);
  for (const unsigned threads : kThreadCounts) {
    CollectingSink sink;
    const MapReduceMetrics metrics = LabeledBucketOrientedEnumerate(
        pattern, g, 3, 1, &sink, ExecutionPolicy::WithThreads(threads));
    EXPECT_EQ(metrics, serial) << "threads=" << threads;
    EXPECT_EQ(sink.assignments(), serial_sink.assignments())
        << "threads=" << threads;
  }
}

TEST(EngineParallel, DirectedBucketOriented) {
  const DirectedGraph g = RandomDigraph(150, 900, 13);
  const DirectedSampleGraph pattern = DirectedSampleGraph::CycleTriad();
  CollectingSink serial_sink;
  const MapReduceMetrics serial = DirectedBucketOrientedEnumerate(
      pattern, g, 3, 1, &serial_sink, ExecutionPolicy::Serial());
  ASSERT_GT(serial.outputs, 0u);
  for (const unsigned threads : kThreadCounts) {
    CollectingSink sink;
    const MapReduceMetrics metrics = DirectedBucketOrientedEnumerate(
        pattern, g, 3, 1, &sink, ExecutionPolicy::WithThreads(threads));
    EXPECT_EQ(metrics, serial) << "threads=" << threads;
    EXPECT_EQ(sink.assignments(), serial_sink.assignments())
        << "threads=" << threads;
  }
}

TEST(EngineParallel, CallbackExceptionsPropagateAtEveryThreadCount) {
  // A throwing reducer must surface a catchable exception under every
  // policy, not std::terminate the process from a worker thread.
  std::vector<int> inputs(100);
  for (size_t i = 0; i < inputs.size(); ++i) inputs[i] = static_cast<int>(i);
  auto map_fn = [](const int& value, Emitter<int>* out) {
    out->Emit(static_cast<uint64_t>(value % 10), value);
  };
  auto reduce_fn = [](uint64_t key, std::span<const int>, ReduceContext*) {
    if (key == 7) throw std::runtime_error("reducer 7 failed");
  };
  for (const unsigned threads : kThreadCounts) {
    const auto run = [&] {
      RunIntRound(inputs, map_fn, reduce_fn, nullptr, 10,
                  ExecutionPolicy::WithThreads(threads));
    };
    EXPECT_THROW(run(), std::runtime_error) << "threads=" << threads;
  }
}

TEST(EngineParallel, DirectedColdAutomorphismCache) {
  // A freshly built pattern's lazy automorphism cache must be safe to use
  // from a parallel-first run (the engine warms it before the round).
  const DirectedGraph g = RandomDigraph(100, 600, 31);
  CollectingSink cold_sink;
  const MapReduceMetrics cold = DirectedBucketOrientedEnumerate(
      DirectedSampleGraph::CycleTriad(), g, 3, 1, &cold_sink,
      ExecutionPolicy::WithThreads(8));
  CollectingSink serial_sink;
  const MapReduceMetrics serial = DirectedBucketOrientedEnumerate(
      DirectedSampleGraph::CycleTriad(), g, 3, 1, &serial_sink,
      ExecutionPolicy::Serial());
  EXPECT_EQ(cold, serial);
  EXPECT_EQ(cold_sink.assignments(), serial_sink.assignments());
}

TEST(EngineParallel, CountingSinkUnbufferedPathMatches) {
  // CountingSink takes the engine's O(1)-memory EmitCount path in parallel
  // runs; the count must match the buffered CollectingSink and the metrics.
  const Graph g = ErdosRenyi(300, 1800, 11);
  const SubgraphEnumerator enumerator(SampleGraph::Triangle());
  CollectingSink collecting;
  const MapReduceMetrics reference = enumerator.RunBucketOriented(
      g, 4, 1, &collecting, ExecutionPolicy::Serial());
  for (const unsigned threads : kThreadCounts) {
    CountingSink counting;
    const MapReduceMetrics metrics = enumerator.RunBucketOriented(
        g, 4, 1, &counting, ExecutionPolicy::WithThreads(threads));
    EXPECT_EQ(metrics, reference) << "threads=" << threads;
    EXPECT_EQ(counting.count(), collecting.assignments().size())
        << "threads=" << threads;
  }
}

TEST(EngineParallel, ParallelMatchesGroundTruth) {
  // Beyond matching the serial engine, the 8-thread run must still match
  // the reference serial matcher ("each instance exactly once").
  const Graph g = ErdosRenyi(200, 1400, 29);
  const SampleGraph pattern = SampleGraph::Triangle();
  const SubgraphEnumerator enumerator(pattern);
  CollectingSink sink;
  enumerator.RunBucketOriented(g, 4, 7, &sink, ExecutionPolicy::WithThreads(8));
  EXPECT_EQ(KeysOf(sink, pattern), GroundTruthKeys(pattern, g));
}

}  // namespace
}  // namespace smr
