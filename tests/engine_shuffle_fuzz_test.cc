// Seeded randomized property test for the engine's shuffle implementations:
// arbitrary map/reduce functions run through the serial engine, the sort
// shuffle, and the partitioned shuffle at 1/2/4/8 threads (and several
// partition counts) must produce byte-identical metrics and identical sink
// emissions in identical order — including the counting-sink fast path and
// the exception path. This is the determinism contract the strategies and
// every downstream experiment rest on.

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mapreduce/job.h"
#include "util/hashing.h"
#include "util/rng.h"

namespace smr {
namespace {

const unsigned kThreadCounts[] = {1, 2, 4, 8};
const unsigned kPartitionCounts[] = {0 /* auto */, 1, 3, 64};

/// One randomized round: inputs are ints, and the map/reduce callbacks are
/// pure functions of (input, spec) so every engine sees the same round.
/// (Named FuzzRound: RoundSpec is the engine's declarative descriptor.)
struct FuzzRound {
  uint64_t seed = 0;
  uint64_t key_space = 0;  // 0 = undeclared (radix partitioning).
  size_t num_inputs = 0;
  bool emit_stray_keys = false;  // Occasionally key >= key_space.
};

std::vector<int> MakeInputs(const FuzzRound& spec) {
  std::vector<int> inputs(spec.num_inputs);
  Rng rng(spec.seed);
  for (int& value : inputs) value = static_cast<int>(rng.Below(1 << 20));
  return inputs;
}

uint64_t KeyFor(const FuzzRound& spec, int input, int emission) {
  const uint64_t h =
      SplitMix64(static_cast<uint64_t>(input) * 1315423911u + emission +
                 spec.seed);
  if (spec.key_space == 0) return h;  // Anywhere in 64 bits.
  if (spec.emit_stray_keys && h % 13 == 0) {
    // Key outside the declared space: the partitioner must clamp it into
    // the last partition without breaking the ordered replay. Alternate
    // between barely-over and astronomically-over keys — the latter once
    // slipped past the clamp when the partition quotient was narrowed to
    // 32 bits before comparison.
    return h % 2 == 0 ? spec.key_space + h % 5
                      : (uint64_t{1} << 63) + h % 1000;
  }
  return h % spec.key_space;
}

MapReduceMetrics RunSpec(const FuzzRound& spec, const std::vector<int>& inputs,
                         InstanceSink* sink, const ExecutionPolicy& policy) {
  auto map_fn = [spec](const int& input, Emitter<int>* out) {
    const unsigned emissions =
        SplitMix64(static_cast<uint64_t>(input) ^ spec.seed) % 4;
    for (unsigned e = 0; e < emissions; ++e) {
      out->Emit(KeyFor(spec, input, e), input + static_cast<int>(e));
    }
  };
  auto reduce_fn = [](uint64_t key, std::span<const int> values,
                      ReduceContext* context) {
    context->cost->edges_scanned += values.size();
    context->cost->index_probes += key % 5;
    for (const int v : values) {
      if (v % 3 == 0) {
        const NodeId node = static_cast<NodeId>(v);
        context->EmitInstance(std::span<const NodeId>(&node, 1));
      }
    }
  };
  JobDriver driver(policy);
  return driver.RunRound(RoundSpec<int, int>{"fuzz", map_fn, reduce_fn,
                                             spec.key_space, {}},
                         inputs, sink);
}

std::vector<ExecutionPolicy> AllPolicies() {
  std::vector<ExecutionPolicy> policies;
  for (const unsigned threads : kThreadCounts) {
    policies.push_back(
        ExecutionPolicy::WithThreads(threads).WithShuffle(ShuffleMode::kSort));
    for (const unsigned partitions : kPartitionCounts) {
      policies.push_back(ExecutionPolicy::WithThreads(threads)
                             .WithShuffle(ShuffleMode::kPartitioned)
                             .WithPartitions(partitions));
    }
  }
  return policies;
}

std::string Describe(const ExecutionPolicy& policy) {
  return "threads=" + std::to_string(policy.num_threads) + " mode=" +
         (policy.shuffle == ShuffleMode::kSort ? "sort" : "partitioned") +
         " partitions=" + std::to_string(policy.shuffle_partitions);
}

TEST(EngineShuffleFuzz, AllEnginesAgreeOnRandomRounds) {
  std::vector<FuzzRound> specs;
  Rng rng(0xf00d);
  for (uint64_t trial = 0; trial < 12; ++trial) {
    FuzzRound spec;
    spec.seed = rng.Next();
    const uint64_t key_spaces[] = {0,    1,      7,
                                   1000, 100000, uint64_t{1} << 62};
    spec.key_space = key_spaces[trial % 6];
    spec.num_inputs = rng.Below(800);
    spec.emit_stray_keys = trial % 2 == 0;
    specs.push_back(spec);
  }
  // Degenerate rounds stay in the matrix too.
  specs.push_back(FuzzRound{1, 10, 0, false});   // No inputs.
  specs.push_back(FuzzRound{2, 1, 300, false});  // Single reducer.

  for (const FuzzRound& spec : specs) {
    const std::vector<int> inputs = MakeInputs(spec);
    CollectingSink reference_sink;
    const MapReduceMetrics reference =
        RunSpec(spec, inputs, &reference_sink, ExecutionPolicy::Serial());

    for (const ExecutionPolicy& policy : AllPolicies()) {
      CollectingSink sink;
      const MapReduceMetrics metrics = RunSpec(spec, inputs, &sink, policy);
      EXPECT_EQ(metrics, reference)
          << Describe(policy) << " key_space=" << spec.key_space;
      EXPECT_EQ(sink.assignments(), reference_sink.assignments())
          << Describe(policy) << " key_space=" << spec.key_space;
    }
  }
}

TEST(EngineShuffleFuzz, CountingSinkPathMatchesBufferedPath) {
  FuzzRound spec;
  spec.seed = 0xc0de;
  spec.key_space = 5000;
  spec.num_inputs = 600;
  spec.emit_stray_keys = true;
  const std::vector<int> inputs = MakeInputs(spec);

  CollectingSink reference_sink;
  RunSpec(spec, inputs, &reference_sink, ExecutionPolicy::Serial());

  for (const ExecutionPolicy& policy : AllPolicies()) {
    CountingSink counting;
    const MapReduceMetrics metrics = RunSpec(spec, inputs, &counting, policy);
    EXPECT_EQ(counting.count(), reference_sink.assignments().size())
        << Describe(policy);
    EXPECT_EQ(metrics.outputs, counting.count()) << Describe(policy);
  }
}

TEST(EngineShuffleFuzz, ReducerExceptionsSurfaceUnderEveryEngine) {
  std::vector<int> inputs(200);
  for (size_t i = 0; i < inputs.size(); ++i) inputs[i] = static_cast<int>(i);
  auto map_fn = [](const int& value, Emitter<int>* out) {
    out->Emit(static_cast<uint64_t>(value % 23), value);
  };
  auto reduce_fn = [](uint64_t key, std::span<const int>, ReduceContext*) {
    if (key == 11) throw std::runtime_error("reducer 11 failed");
  };
  for (const ExecutionPolicy& policy : AllPolicies()) {
    const auto run = [&] {
      JobDriver driver(policy);
      driver.RunRound(RoundSpec<int, int>{"throwing-reduce", map_fn,
                                          reduce_fn, 23, {}},
                      inputs, nullptr);
    };
    EXPECT_THROW(run(), std::runtime_error) << Describe(policy);
  }
}

TEST(EngineShuffleFuzz, MapperExceptionsSurfaceUnderEveryEngine) {
  std::vector<int> inputs(100);
  for (size_t i = 0; i < inputs.size(); ++i) inputs[i] = static_cast<int>(i);
  auto map_fn = [](const int& value, Emitter<int>* out) {
    if (value == 63) throw std::runtime_error("mapper 63 failed");
    out->Emit(static_cast<uint64_t>(value), value);
  };
  auto reduce_fn = [](uint64_t, std::span<const int>, ReduceContext*) {};
  for (const ExecutionPolicy& policy : AllPolicies()) {
    const auto run = [&] {
      JobDriver driver(policy);
      driver.RunRound(RoundSpec<int, int>{"throwing-map", map_fn, reduce_fn,
                                          100, {}},
                      inputs, nullptr);
    };
    EXPECT_THROW(run(), std::runtime_error) << Describe(policy);
  }
}

TEST(EngineInternals, KeyPartitionerClampsFarStrayKeysMonotonically) {
  // Regression: with key_space=2^16 and 8 partitions, key 2^58 has
  // partition quotient exactly 2^32 — narrowing the quotient to 32 bits
  // before the clamp wrapped it to partition 0, routing the largest key
  // below the smallest and breaking the ordered replay. Far-out keys must
  // land in the last partition, and the key -> partition map must be
  // monotone over the whole 64-bit range.
  const KeyPartitioner partitioner(8, uint64_t{1} << 16);
  EXPECT_EQ(partitioner.PartitionOf(uint64_t{1} << 58), 7u);
  const uint64_t keys[] = {0,     1,          60000,          65535,
                           65536, 1 << 20,    uint64_t{1} << 45,
                           uint64_t{1} << 58, uint64_t{1} << 63, UINT64_MAX};
  unsigned previous = 0;
  for (const uint64_t key : keys) {
    const unsigned partition = partitioner.PartitionOf(key);
    EXPECT_GE(partition, previous) << "key=" << key;
    EXPECT_LT(partition, 8u) << "key=" << key;
    previous = partition;
  }
}

TEST(EngineInternals, SliceBoundariesDoesNotOverflowOnHugeSizes) {
  // size * t wraps size_t once size > SIZE_MAX / parts; the boundaries must
  // still be exact (monotone, near-equal slices, endpoints pinned).
  const size_t size = std::numeric_limits<size_t>::max();
  for (const unsigned parts : {2u, 7u, 64u}) {
    const std::vector<size_t> bounds =
        engine_internal::SliceBoundaries(size, parts);
    ASSERT_EQ(bounds.size(), parts + 1);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), size);
    for (unsigned t = 0; t < parts; ++t) {
      ASSERT_LE(bounds[t], bounds[t + 1]);
      const size_t slice = bounds[t + 1] - bounds[t];
      EXPECT_GE(slice, size / parts);
      EXPECT_LE(slice, size / parts + 1);
    }
  }
}

TEST(EngineInternals, SliceBoundariesSmallSizesUnchanged) {
  // The 128-bit fix must not perturb the boundaries for ordinary sizes.
  const std::vector<size_t> bounds = engine_internal::SliceBoundaries(10, 4);
  EXPECT_EQ(bounds, (std::vector<size_t>{0, 2, 5, 7, 10}));
}

}  // namespace
}  // namespace smr
