// The sort-free grouping layer (mapreduce/group_by_key.h) and its policy
// knob (GroupMode): unit tests of the counting scatter's stability and
// fallback rule, a property-fuzz grid asserting byte-identical outputs,
// order, and semantic metrics across sort/counting/auto grouping x 1/2/4/8
// threads x combine on/off x both shuffle modes, the grouping-mode
// ShuffleStats, and the empty-round short-circuit regression.

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "mapreduce/group_by_key.h"
#include "mapreduce/job.h"
#include "util/hashing.h"
#include "util/rng.h"

namespace smr {
namespace {

using Pair = std::pair<uint64_t, int>;

std::vector<Pair> Group(std::vector<std::vector<Pair>> buckets,
                        GroupMode mode, bool* counted) {
  std::vector<std::vector<Pair>*> pointers;
  size_t total = 0;
  for (auto& bucket : buckets) {
    pointers.push_back(&bucket);
    total += bucket.size();
  }
  std::vector<Pair> out;
  std::vector<uint32_t> counts;
  *counted =
      engine_internal::GroupByKey<int>(pointers, total, mode, &out, &counts);
  return out;
}

TEST(GroupByKey, CountingScatterIsStableAndAscending) {
  bool counted = false;
  const std::vector<Pair> grouped = Group(
      {{{5, 1}, {3, 2}, {5, 3}}, {{3, 4}, {4, 5}, {5, 6}}}, GroupMode::kAuto,
      &counted);
  EXPECT_TRUE(counted);  // Range 3..5 is dense for 6 pairs.
  const std::vector<Pair> expected = {
      {3, 2}, {3, 4}, {4, 5}, {5, 1}, {5, 3}, {5, 6}};
  EXPECT_EQ(grouped, expected);
}

TEST(GroupByKey, SparseRangeFallsBackToSortWithIdenticalResult) {
  const std::vector<std::vector<Pair>> buckets = {
      {{1000000000, 1}, {0, 2}}, {{1000000000, 3}}};
  bool counted = true;
  const std::vector<Pair> sorted =
      Group(buckets, GroupMode::kAuto, &counted);
  EXPECT_FALSE(counted);  // Spread 1e9 >> 4 * 3 pairs.
  bool reference_counted = false;
  EXPECT_EQ(sorted, Group(buckets, GroupMode::kSort, &reference_counted));
  const std::vector<Pair> expected = {{0, 2}, {1000000000, 1},
                                      {1000000000, 3}};
  EXPECT_EQ(sorted, expected);
}

TEST(GroupByKey, ForcedCountingAcceptsModeratelySparseRanges) {
  // Spread 100 with 3 pairs: beyond kAuto's 4x density bound, within
  // kCounting's 64x representability cap.
  const std::vector<std::vector<Pair>> buckets = {{{107, 1}, {7, 2}},
                                                  {{50, 3}}};
  bool counted = false;
  const std::vector<Pair> auto_grouped =
      Group(buckets, GroupMode::kAuto, &counted);
  EXPECT_FALSE(counted);
  const std::vector<Pair> forced =
      Group(buckets, GroupMode::kCounting, &counted);
  EXPECT_TRUE(counted);
  EXPECT_EQ(forced, auto_grouped);
}

TEST(GroupByKey, ForcedCountingStillRefusesAstronomicalRanges) {
  // A stray radix key makes the range ~2^63; the forced mode must fall
  // back to sort instead of attempting the histogram allocation.
  bool counted = true;
  const std::vector<Pair> grouped = Group(
      {{{uint64_t{1} << 63, 1}, {2, 2}}}, GroupMode::kCounting, &counted);
  EXPECT_FALSE(counted);
  const std::vector<Pair> expected = {{2, 2}, {uint64_t{1} << 63, 1}};
  EXPECT_EQ(grouped, expected);
}

TEST(GroupByKey, EmptyPartition) {
  bool counted = true;
  EXPECT_TRUE(Group({{}, {}}, GroupMode::kAuto, &counted).empty());
  EXPECT_FALSE(counted);
}

// ---------------------------------------------------------------------------
// Property grid: every (group mode, shuffle mode, threads, combine) cell
// must reproduce the serial reference byte-for-byte.

struct GridRound {
  uint64_t seed = 0;
  uint64_t key_space = 0;
  size_t num_inputs = 0;
  bool stray_keys = false;
  bool with_combiner = false;
};

RoundSpec<int, int> MakeRound(const GridRound& spec) {
  const uint64_t seed = spec.seed;
  const uint64_t key_space = spec.key_space;
  const bool stray = spec.stray_keys;
  RoundSpec<int, int> round;
  round.name = "grouping-grid";
  round.key_space = key_space;
  round.mapper = [seed, key_space, stray](const int& input,
                                          Emitter<int>* out) {
    const unsigned emissions =
        SplitMix64(static_cast<uint64_t>(input) ^ seed) % 5;
    for (unsigned e = 0; e < emissions; ++e) {
      uint64_t key =
          SplitMix64(static_cast<uint64_t>(input) * 2654435761u + e + seed);
      if (key_space > 0) {
        key = (stray && key % 17 == 0) ? key_space + key % 3000
                                       : key % key_space;
      }
      out->Emit(key, input + static_cast<int>(e));
    }
  };
  round.reducer = [](uint64_t key, std::span<const int> values,
                     ReduceContext* context) {
    context->cost->edges_scanned += values.size();
    int sum = 0;
    for (const int v : values) sum += v;
    if ((static_cast<uint64_t>(sum) + key) % 2 == 0) {
      const NodeId node = static_cast<NodeId>(sum & 0xffff);
      context->EmitInstance(std::span<const NodeId>(&node, 1));
    }
  };
  if (spec.with_combiner) {
    round.combiner = [](int& acc, const int& incoming) { acc += incoming; };
  }
  return round;
}

std::string Describe(const ExecutionPolicy& policy) {
  const char* group = policy.group == GroupMode::kSort      ? "sort"
                      : policy.group == GroupMode::kCounting ? "counting"
                                                             : "auto";
  return "threads=" + std::to_string(policy.num_threads) + " shuffle=" +
         (policy.shuffle == ShuffleMode::kSort ? "sort" : "partitioned") +
         " group=" + group + " combine=" + (policy.combine ? "on" : "off");
}

TEST(GroupingEquivalence, AllGroupModesMatchTheSerialReference) {
  const uint64_t key_spaces[] = {0, 1, 500, 40000};
  std::vector<GridRound> specs;
  Rng rng(0xbeef);
  for (uint64_t trial = 0; trial < 8; ++trial) {
    GridRound spec;
    spec.seed = rng.Next();
    spec.key_space = key_spaces[trial % 4];
    spec.num_inputs = 200 + rng.Below(600);
    spec.stray_keys = trial % 2 == 0;
    spec.with_combiner = trial % 3 != 0;
    specs.push_back(spec);
  }

  for (const GridRound& spec : specs) {
    std::vector<int> inputs(spec.num_inputs);
    Rng value_rng(spec.seed);
    for (int& v : inputs) v = static_cast<int>(value_rng.Below(1 << 20));
    const RoundSpec<int, int> round = MakeRound(spec);

    // One serial reference per combine setting: combining changes what the
    // reducer sees (one folded value), so max_reducer_input / reduce_cost
    // legitimately differ between on and off — but outputs never do.
    CollectingSink reference_sinks[2];
    MapReduceMetrics references[2];
    for (const bool combine : {false, true}) {
      JobDriver reference_driver(
          ExecutionPolicy::Serial().WithCombine(combine));
      references[combine] =
          reference_driver.RunRound(round, inputs, &reference_sinks[combine]);
    }
    EXPECT_EQ(reference_sinks[0].assignments(),
              reference_sinks[1].assignments())
        << "combining changed results, key_space=" << spec.key_space;

    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      for (const ShuffleMode shuffle :
           {ShuffleMode::kSort, ShuffleMode::kPartitioned}) {
        for (const GroupMode group :
             {GroupMode::kSort, GroupMode::kCounting, GroupMode::kAuto}) {
          for (const bool combine : {true, false}) {
            const ExecutionPolicy policy = ExecutionPolicy::WithThreads(threads)
                                               .WithShuffle(shuffle)
                                               .WithGroup(group)
                                               .WithCombine(combine);
            CollectingSink sink;
            JobDriver driver(policy);
            const MapReduceMetrics metrics =
                driver.RunRound(round, inputs, &sink);
            EXPECT_EQ(metrics, references[combine])
                << Describe(policy) << " key_space=" << spec.key_space;
            EXPECT_EQ(sink.assignments(), reference_sinks[combine].assignments())
                << Describe(policy) << " key_space=" << spec.key_space;
          }
        }
      }
    }
  }
}

TEST(GroupingStats, DenseRoundCountsEveryPartitionAndSortModeNone) {
  std::vector<int> inputs(20000);
  for (size_t i = 0; i < inputs.size(); ++i) inputs[i] = static_cast<int>(i);
  RoundSpec<int, int> round;
  round.name = "dense";
  round.key_space = 512;
  round.mapper = [](const int& v, Emitter<int>* out) {
    out->Emit(SplitMix64(static_cast<uint64_t>(v)) % 512, v);
  };
  round.reducer = [](uint64_t, std::span<const int> values,
                     ReduceContext* context) {
    context->cost->edges_scanned += values.size();
  };

  const ExecutionPolicy base = ExecutionPolicy::WithThreads(4);
  JobDriver auto_driver(base.WithGroup(GroupMode::kAuto));
  const MapReduceMetrics with_auto =
      auto_driver.RunRound(round, inputs, nullptr);
  EXPECT_GT(with_auto.shuffle.counting_partitions, 0u);
  EXPECT_EQ(with_auto.shuffle.sorted_partitions, 0u);

  JobDriver sort_driver(base.WithGroup(GroupMode::kSort));
  const MapReduceMetrics with_sort =
      sort_driver.RunRound(round, inputs, nullptr);
  EXPECT_EQ(with_sort.shuffle.counting_partitions, 0u);
  EXPECT_GT(with_sort.shuffle.sorted_partitions, 0u);
  EXPECT_EQ(with_auto, with_sort);

  // The sort *shuffle* never partitions, so it reports neither.
  JobDriver shuffle_sort_driver(base.WithShuffle(ShuffleMode::kSort));
  const MapReduceMetrics sort_shuffle =
      shuffle_sort_driver.RunRound(round, inputs, nullptr);
  EXPECT_EQ(sort_shuffle.shuffle.counting_partitions, 0u);
  EXPECT_EQ(sort_shuffle.shuffle.sorted_partitions, 0u);
}

// ---------------------------------------------------------------------------
// Satellite regression: a mapper that emits nothing must short-circuit the
// round (no sort, no reduce dispatch) and still return coherent metrics.

TEST(EmptyRound, MapperEmittingNothingShortCircuits) {
  std::vector<int> inputs(500);
  for (size_t i = 0; i < inputs.size(); ++i) inputs[i] = static_cast<int>(i);
  RoundSpec<int, int> round;
  round.name = "silent";
  round.key_space = 1000;
  round.mapper = [](const int&, Emitter<int>*) {};  // Never emits.
  round.reducer = [](uint64_t, std::span<const int>, ReduceContext*) {
    FAIL() << "reducer must not run in an empty round";
  };

  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const ShuffleMode shuffle :
         {ShuffleMode::kSort, ShuffleMode::kPartitioned}) {
      const ExecutionPolicy policy =
          ExecutionPolicy::WithThreads(threads).WithShuffle(shuffle);
      CollectingSink sink;
      CountingSink counting;
      JobDriver driver(policy);
      const MapReduceMetrics metrics = driver.RunRound(round, inputs, &sink);
      JobDriver counting_driver(policy);
      const MapReduceMetrics counted =
          counting_driver.RunRound(round, inputs, &counting);
      EXPECT_EQ(metrics, counted);
      EXPECT_EQ(metrics.input_records, inputs.size());
      EXPECT_EQ(metrics.key_value_pairs, 0u);
      EXPECT_EQ(metrics.distinct_keys, 0u);
      EXPECT_EQ(metrics.outputs, 0u);
      EXPECT_TRUE(sink.assignments().empty());
      EXPECT_EQ(counting.count(), 0u);
      // No reduce dispatch happened: the round's pool accounting shows at
      // most the map phase.
      EXPECT_EQ(metrics.shuffle.counting_partitions +
                    metrics.shuffle.sorted_partitions,
                0u);
    }
  }
}

TEST(EmptyRound, EmptyInputSpanShortCircuits) {
  RoundSpec<int, int> round;
  round.name = "no-inputs";
  round.key_space = 10;
  round.mapper = [](const int&, Emitter<int>*) {
    FAIL() << "mapper must not run without inputs";
  };
  round.reducer = [](uint64_t, std::span<const int>, ReduceContext*) {
    FAIL() << "reducer must not run without inputs";
  };
  const std::vector<int> inputs;
  for (const ShuffleMode shuffle :
       {ShuffleMode::kSort, ShuffleMode::kPartitioned}) {
    JobDriver driver(ExecutionPolicy::WithThreads(4).WithShuffle(shuffle));
    const MapReduceMetrics metrics = driver.RunRound(round, inputs, nullptr);
    EXPECT_EQ(metrics.input_records, 0u);
    EXPECT_EQ(metrics.key_value_pairs, 0u);
    EXPECT_EQ(metrics.outputs, 0u);
  }
}

}  // namespace
}  // namespace smr
