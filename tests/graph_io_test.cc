// The binary edge-list format (graph/io): a text-loaded graph, written as
// binary and loaded back, must equal the text load exactly; every way a
// binary file can be malformed — wrong magic, unknown version, truncation
// at each boundary, trailing bytes, out-of-range endpoints — must throw
// std::runtime_error, never yield a silently wrong graph; and
// LoadGraphFile must route both formats by sniffing, not by extension.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/io.h"

namespace smr {
namespace {

/// Temp file path that cleans up after the test.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_(testing::TempDir() + name) {}
  ~ScratchFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool SameGraph(const Graph& a, const Graph& b) {
  return a.num_nodes() == b.num_nodes() && a.edges() == b.edges();
}

TEST(GraphIo, BinaryRoundTripEqualsTextLoad) {
  const Graph generated = ErdosRenyi(500, 2000, 99);

  // Text round trip first, as the baseline.
  ScratchFile text("graph_io_roundtrip.txt");
  {
    std::ofstream out(text.path());
    WriteEdgeList(generated, out);
  }
  const Graph from_text = ReadEdgeListFile(text.path());
  EXPECT_EQ(from_text.edges(), generated.edges());

  // Binary round trip must reproduce the text load bit for bit — including
  // num_nodes, which the text loader infers as max id + 1 but the binary
  // header carries explicitly.
  ScratchFile binary("graph_io_roundtrip.smrb");
  WriteBinaryEdgeListFile(from_text, binary.path());
  const Graph from_binary = ReadBinaryEdgeListFile(binary.path());
  EXPECT_TRUE(SameGraph(from_binary, from_text));
}

TEST(GraphIo, BinaryPreservesIsolatedTailNodes) {
  // num_nodes > max endpoint + 1 survives the round trip (the text format
  // cannot represent this; the binary header can).
  const Graph graph(10, {{0, 1}, {1, 2}});
  ScratchFile file("graph_io_tail.smrb");
  WriteBinaryEdgeListFile(graph, file.path());
  const Graph loaded = ReadBinaryEdgeListFile(file.path());
  EXPECT_EQ(loaded.num_nodes(), 10u);
  EXPECT_EQ(loaded.edges(), graph.edges());
}

TEST(GraphIo, EmptyGraphRoundTrips) {
  const Graph graph(0, {});
  ScratchFile file("graph_io_empty.smrb");
  WriteBinaryEdgeListFile(graph, file.path());
  const Graph loaded = ReadBinaryEdgeListFile(file.path());
  EXPECT_EQ(loaded.num_nodes(), 0u);
  EXPECT_TRUE(loaded.edges().empty());
}

TEST(GraphIo, LoadGraphFileSniffsBothFormats) {
  const Graph graph = ErdosRenyi(200, 800, 5);

  ScratchFile text("graph_io_sniff_text");  // Deliberately no extension.
  {
    std::ofstream out(text.path());
    WriteEdgeList(graph, out);
  }
  EXPECT_TRUE(SameGraph(LoadGraphFile(text.path()), graph));

  ScratchFile binary("graph_io_sniff_binary");
  WriteBinaryEdgeListFile(graph, binary.path());
  EXPECT_TRUE(SameGraph(LoadGraphFile(binary.path()), graph));

  EXPECT_THROW(LoadGraphFile("/nonexistent/graph/file"), std::runtime_error);
}

TEST(GraphIo, BadMagicThrows) {
  ScratchFile file("graph_io_bad_magic.smrb");
  WriteBytes(file.path(), "NOPE" + std::string(20, '\0'));
  EXPECT_THROW(ReadBinaryEdgeListFile(file.path()), std::runtime_error);
}

TEST(GraphIo, UnknownVersionThrows) {
  const Graph graph(3, {{0, 1}});
  ScratchFile file("graph_io_bad_version.smrb");
  WriteBinaryEdgeListFile(graph, file.path());
  std::string bytes = ReadBytes(file.path());
  bytes[4] = static_cast<char>(0x7f);  // Version field follows the magic.
  WriteBytes(file.path(), bytes);
  EXPECT_THROW(ReadBinaryEdgeListFile(file.path()), std::runtime_error);
}

TEST(GraphIo, TruncationAtEveryBoundaryThrows) {
  const Graph graph(6, {{0, 1}, {2, 3}, {4, 5}});
  ScratchFile file("graph_io_truncated.smrb");
  WriteBinaryEdgeListFile(graph, file.path());
  const std::string bytes = ReadBytes(file.path());
  // Mid-magic, mid-version, mid-counts, zero edges present, mid-edge, and
  // one edge short.
  const size_t cuts[] = {2, 6, 12, 24, 28, bytes.size() - 8};
  for (const size_t cut : cuts) {
    ASSERT_LT(cut, bytes.size());
    WriteBytes(file.path(), bytes.substr(0, cut));
    EXPECT_THROW(ReadBinaryEdgeListFile(file.path()), std::runtime_error)
        << "cut=" << cut;
  }
}

TEST(GraphIo, TrailingBytesThrow) {
  const Graph graph(4, {{0, 1}, {2, 3}});
  ScratchFile file("graph_io_trailing.smrb");
  WriteBinaryEdgeListFile(graph, file.path());
  WriteBytes(file.path(), ReadBytes(file.path()) + "junk");
  EXPECT_THROW(ReadBinaryEdgeListFile(file.path()), std::runtime_error);
}

TEST(GraphIo, OutOfRangeEndpointThrows) {
  const Graph graph(4, {{0, 1}, {2, 3}});
  ScratchFile file("graph_io_bad_edge.smrb");
  WriteBinaryEdgeListFile(graph, file.path());
  std::string bytes = ReadBytes(file.path());
  // Overwrite the last edge's second endpoint (final 4 bytes) with 4 —
  // equal to num_nodes, so one past the valid range.
  const uint32_t bad = 4;
  bytes.replace(bytes.size() - 4, 4, reinterpret_cast<const char*>(&bad), 4);
  WriteBytes(file.path(), bytes);
  EXPECT_THROW(ReadBinaryEdgeListFile(file.path()), std::runtime_error);
}

TEST(GraphIo, ErrorsNameTheFile) {
  ScratchFile file("graph_io_named.smrb");
  WriteBytes(file.path(), "garbage");
  try {
    ReadBinaryEdgeListFile(file.path());
    FAIL() << "garbage file did not throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find(file.path()), std::string::npos)
        << "got: " << error.what();
  }
}

}  // namespace
}  // namespace smr
