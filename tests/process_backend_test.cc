// Differential and crash tests for the process backend
// (mapreduce/process_backend.h): forked map/reduce workers over
// codec-framed socketpairs must produce byte-identical instances, order,
// and semantic metrics to the in-thread backends for every worker count,
// shuffle mode, and spill budget — and a worker that dies or throws must
// surface as a runtime_error naming the worker, never as a hang.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/strategy.h"
#include "graph/generators.h"
#include "graph/sample_graph.h"
#include "mapreduce/engine.h"
#include "mapreduce/execution_policy.h"
#include "mapreduce/instance_sink.h"
#include "mapreduce/job.h"
#include "mapreduce/metrics.h"

namespace smr {
namespace {

Graph TestGraph() { return ErdosRenyi(60, 240, 7); }

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// Full-strategy differential: process backend vs the serial reference
// ---------------------------------------------------------------------------

struct StrategyRun {
  uint64_t instances = 0;
  std::vector<std::vector<NodeId>> assignments;
  MapReduceMetrics metrics;
  JobMetrics job;
};

StrategyRun RunStrategy(const SampleGraph& pattern, const Graph& graph,
                        const std::string& strategy,
                        const ExecutionPolicy& policy) {
  CollectingSink sink;
  EnumerationQuery query = EnumerationQuery::Undirected(pattern, graph);
  query.WithStrategy(strategy).WithPolicy(policy).WithSink(&sink);
  const EnumerationResult result = StrategyRegistry::Global().Run(query);
  return StrategyRun{result.instances, sink.assignments(), result.metrics,
                     result.job};
}

// The acceptance grid from the issue: worker counts {1,2,4} x shuffle
// modes x a spill budget, on a triangle and a square pattern, including a
// multi-round strategy (tworound) so the intermediate-record channel
// crosses the process boundary too. Every cell must match the serial
// reference byte for byte: instance count, assignments in order, the
// headline round's semantic metrics, and the whole JobMetrics chain.
TEST(ProcessBackend, MatchesThreadBackendAcrossWorkersModesAndBudgets) {
  const Graph graph = TestGraph();
  const SampleGraph triangle = SampleGraph::Triangle();
  const SampleGraph square = SampleGraph::Square();
  const struct {
    const SampleGraph* pattern;
    const char* strategy;
  } kCases[] = {
      {&triangle, "bucket:6"},
      {&triangle, "tworound"},
      {&square, "bucket:5"},
  };

  for (const auto& test_case : kCases) {
    const StrategyRun expected =
        RunStrategy(*test_case.pattern, graph, test_case.strategy,
                    ExecutionPolicy::Serial());
    ASSERT_GT(expected.instances, 0u) << test_case.strategy;

    for (const unsigned workers : {1u, 2u, 4u}) {
      for (const ShuffleMode mode :
           {ShuffleMode::kSort, ShuffleMode::kPartitioned}) {
        for (const uint64_t budget : {uint64_t{0}, uint64_t{64} * 1024}) {
          const ExecutionPolicy policy =
              ExecutionPolicy::Serial()
                  .WithShuffle(mode)
                  .WithBudget(budget)
                  .WithBackend(BackendMode::kProcess, workers);
          const StrategyRun got =
              RunStrategy(*test_case.pattern, graph, test_case.strategy,
                          policy);
          const std::string label =
              std::string(test_case.strategy) + " workers=" +
              std::to_string(workers) + " mode=" +
              (mode == ShuffleMode::kSort ? "sort" : "partitioned") +
              " budget=" + std::to_string(budget);
          EXPECT_EQ(got.instances, expected.instances) << label;
          EXPECT_EQ(got.assignments, expected.assignments) << label;
          EXPECT_TRUE(got.metrics == expected.metrics) << label;
          EXPECT_TRUE(got.job == expected.job) << label;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Round-level differentials over a synthetic counting round
// ---------------------------------------------------------------------------

using CountSpec = RoundSpec<uint32_t, uint64_t>;

CountSpec CountRound(uint64_t keys, bool with_combiner) {
  CountSpec spec;
  spec.name = "count";
  spec.key_space = keys;
  spec.mapper = [keys](const uint32_t& input, Emitter<uint64_t>* emitter) {
    emitter->Emit(input % keys, 1);
  };
  spec.reducer = [](uint64_t key, std::span<const uint64_t> values,
                    ReduceContext* context) {
    uint64_t total = 0;
    for (const uint64_t value : values) total += value;
    const NodeId out[2] = {static_cast<NodeId>(key),
                           static_cast<NodeId>(total)};
    context->EmitInstance(out);
  };
  if (with_combiner) {
    spec.combiner = [](uint64_t& acc, const uint64_t& incoming) {
      acc += incoming;
    };
  }
  return spec;
}

std::vector<uint32_t> Iota(size_t n) {
  std::vector<uint32_t> inputs(n);
  std::iota(inputs.begin(), inputs.end(), 0u);
  return inputs;
}

TEST(ProcessBackend, RoundLevelMetricsAndEmissionsMatchThreadBackend) {
  const CountSpec spec = CountRound(50, /*with_combiner=*/false);
  const std::vector<uint32_t> inputs = Iota(1000);

  CollectingSink thread_sink;
  const MapReduceMetrics thread_metrics =
      RunRound(spec, std::span<const uint32_t>(inputs), &thread_sink);

  for (const unsigned workers : {1u, 2u, 3u, 4u}) {
    CollectingSink process_sink;
    const MapReduceMetrics process_metrics = RunRound(
        spec, std::span<const uint32_t>(inputs), &process_sink, nullptr,
        ExecutionPolicy::Serial().WithBackend(BackendMode::kProcess,
                                              workers));
    EXPECT_TRUE(process_metrics == thread_metrics) << workers;
    EXPECT_EQ(process_sink.assignments(), thread_sink.assignments())
        << workers;
  }
}

// Per-child combining: the logical pair count (the paper's communication
// cost) must be unchanged, the physically shipped count shrinks to about
// one pair per (worker, key), and the semantic results still match the
// thread backend exactly.
TEST(ProcessBackend, CombinerShrinksShippedPairsButNotSemantics) {
  const CountSpec spec = CountRound(50, /*with_combiner=*/true);
  const std::vector<uint32_t> inputs = Iota(1000);

  CollectingSink thread_sink;
  const MapReduceMetrics thread_metrics =
      RunRound(spec, std::span<const uint32_t>(inputs), &thread_sink);

  CollectingSink process_sink;
  const MapReduceMetrics process_metrics = RunRound(
      spec, std::span<const uint32_t>(inputs), &process_sink, nullptr,
      ExecutionPolicy::Serial().WithBackend(BackendMode::kProcess, 4));

  EXPECT_TRUE(process_metrics == thread_metrics);
  EXPECT_EQ(process_sink.assignments(), thread_sink.assignments());
  EXPECT_EQ(process_metrics.key_value_pairs, 1000u);
  // 4 workers x 50 keys: every worker's slice covers every key.
  EXPECT_EQ(process_metrics.shuffle.pairs_shipped, 200u);
}

TEST(ProcessBackend, CountsOnlySinkMatchesThreadBackend) {
  const CountSpec spec = CountRound(50, /*with_combiner=*/false);
  const std::vector<uint32_t> inputs = Iota(1000);

  CountingSink thread_sink;
  const MapReduceMetrics thread_metrics =
      RunRound(spec, std::span<const uint32_t>(inputs), &thread_sink);

  CountingSink process_sink;
  const MapReduceMetrics process_metrics = RunRound(
      spec, std::span<const uint32_t>(inputs), &process_sink, nullptr,
      ExecutionPolicy::Serial().WithBackend(BackendMode::kProcess, 3));

  EXPECT_TRUE(process_metrics == thread_metrics);
  EXPECT_EQ(process_sink.count(), thread_sink.count());
  EXPECT_EQ(process_sink.count(), 50u);
}

// Intermediate records (the multi-round channel) must cross the process
// boundary in the same deterministic order the thread backend replays.
TEST(ProcessBackend, RecordChannelCrossesTheProcessBoundaryInOrder) {
  CountSpec spec = CountRound(50, /*with_combiner=*/false);
  spec.reducer = [](uint64_t key, std::span<const uint64_t> values,
                    ReduceContext* context) {
    const NodeId record[2] = {static_cast<NodeId>(key),
                              static_cast<NodeId>(values.size())};
    context->EmitRecord(record);
    if (key % 2 == 0) context->EmitInstance(record);
  };
  const std::vector<uint32_t> inputs = Iota(1000);

  CollectingSink thread_sink;
  RecordBuffer thread_records(2);
  const MapReduceMetrics thread_metrics =
      RunRound(spec, std::span<const uint32_t>(inputs), &thread_sink,
               &thread_records);

  CollectingSink process_sink;
  RecordBuffer process_records(2);
  const MapReduceMetrics process_metrics = RunRound(
      spec, std::span<const uint32_t>(inputs), &process_sink,
      &process_records,
      ExecutionPolicy::Serial().WithBackend(BackendMode::kProcess, 4));

  EXPECT_TRUE(process_metrics == thread_metrics);
  EXPECT_EQ(process_sink.assignments(), thread_sink.assignments());
  ASSERT_EQ(process_records.size(), thread_records.size());
  EXPECT_TRUE(std::equal(process_records.nodes().begin(),
                         process_records.nodes().end(),
                         thread_records.nodes().begin()));
}

// ---------------------------------------------------------------------------
// Wire accounting: measured bytes vs the paper's modeled bytes
// ---------------------------------------------------------------------------

TEST(ProcessBackend, CountsBytesOnTheWirePerLink) {
  const CountSpec spec = CountRound(64, /*with_combiner=*/false);
  const std::vector<uint32_t> inputs = Iota(2000);

  CollectingSink sink;
  const MapReduceMetrics metrics = RunRound(
      spec, std::span<const uint32_t>(inputs), &sink, nullptr,
      ExecutionPolicy::Serial().WithBackend(BackendMode::kProcess, 3));
  const ShuffleStats& stats = metrics.shuffle;

  // 3 map workers + 3 reduce workers were forked.
  EXPECT_EQ(stats.process_workers, 6u);
  ASSERT_EQ(stats.link_bytes_on_wire.size(), 3u);
  uint64_t link_total = 0;
  for (const uint64_t link : stats.link_bytes_on_wire) {
    EXPECT_GT(link, 0u);
    link_total += link;
  }
  EXPECT_EQ(link_total, stats.map_bytes_on_wire);
  EXPECT_GT(stats.reduce_bytes_on_wire, 0u);

  // The measured map->coordinator volume tracks the paper's
  // key_value_pairs x record_size model: varint framing compresses small
  // keys, length prefixes add a little, so the ratio stays within
  // [0.5, 1.5] of the modeled shuffle bytes.
  EXPECT_GT(stats.shuffle_bytes, 0u);
  EXPECT_GE(stats.map_bytes_on_wire * 2, stats.shuffle_bytes);
  EXPECT_LE(stats.map_bytes_on_wire * 2, stats.shuffle_bytes * 3);
}

TEST(ProcessBackend, ThreadBackendLeavesWireCountersZero) {
  const CountSpec spec = CountRound(64, /*with_combiner=*/false);
  const std::vector<uint32_t> inputs = Iota(500);
  CollectingSink sink;
  const MapReduceMetrics metrics =
      RunRound(spec, std::span<const uint32_t>(inputs), &sink);
  EXPECT_EQ(metrics.shuffle.map_bytes_on_wire, 0u);
  EXPECT_EQ(metrics.shuffle.reduce_bytes_on_wire, 0u);
  EXPECT_TRUE(metrics.shuffle.link_bytes_on_wire.empty());
}

// A tight budget makes the coordinator's per-link channels spill to disk;
// semantics must be identical to the unbudgeted thread run.
TEST(ProcessBackend, SpillsUnderBudgetWithoutChangingResults) {
  const CountSpec spec = CountRound(256, /*with_combiner=*/false);
  const std::vector<uint32_t> inputs = Iota(20000);

  CollectingSink thread_sink;
  const MapReduceMetrics thread_metrics =
      RunRound(spec, std::span<const uint32_t>(inputs), &thread_sink);

  CollectingSink process_sink;
  const MapReduceMetrics process_metrics = RunRound(
      spec, std::span<const uint32_t>(inputs), &process_sink, nullptr,
      ExecutionPolicy::Serial().WithBudget(16 * 1024).WithBackend(
          BackendMode::kProcess, 2));

  EXPECT_GT(process_metrics.shuffle.pages_spilled, 0u);
  EXPECT_GT(process_metrics.shuffle.spill_files, 0u);
  EXPECT_TRUE(process_metrics == thread_metrics);
  EXPECT_EQ(process_sink.assignments(), thread_sink.assignments());
}

// ---------------------------------------------------------------------------
// Crash detection: dead or throwing workers raise, never hang
// ---------------------------------------------------------------------------

TEST(ProcessBackend, DeadMapWorkerRaisesErrorNamingTheWorker) {
  const pid_t parent = getpid();
  CountSpec spec = CountRound(8, /*with_combiner=*/false);
  spec.mapper = [parent](const uint32_t& input, Emitter<uint64_t>* emitter) {
    if (getpid() != parent) _exit(3);
    emitter->Emit(input % 8, 1);
  };
  const std::vector<uint32_t> inputs = Iota(100);
  CollectingSink sink;
  try {
    RunRound(spec, std::span<const uint32_t>(inputs), &sink, nullptr,
             ExecutionPolicy::Serial().WithBackend(BackendMode::kProcess, 2));
    FAIL() << "a dead map worker must raise";
  } catch (const std::runtime_error& error) {
    EXPECT_TRUE(Contains(error.what(), "map worker")) << error.what();
    EXPECT_TRUE(Contains(error.what(), "exited with status 3"))
        << error.what();
    EXPECT_TRUE(Contains(error.what(), "before finishing its stream"))
        << error.what();
  }
}

TEST(ProcessBackend, DeadReduceWorkerRaisesErrorNamingTheWorker) {
  const pid_t parent = getpid();
  CountSpec spec = CountRound(8, /*with_combiner=*/false);
  spec.reducer = [parent](uint64_t, std::span<const uint64_t>,
                          ReduceContext*) {
    if (getpid() != parent) _exit(4);
  };
  const std::vector<uint32_t> inputs = Iota(100);
  CollectingSink sink;
  try {
    RunRound(spec, std::span<const uint32_t>(inputs), &sink, nullptr,
             ExecutionPolicy::Serial().WithBackend(BackendMode::kProcess, 2));
    FAIL() << "a dead reduce worker must raise";
  } catch (const std::runtime_error& error) {
    EXPECT_TRUE(Contains(error.what(), "reduce worker")) << error.what();
    EXPECT_TRUE(Contains(error.what(), "exited with status 4"))
        << error.what();
  }
}

TEST(ProcessBackend, MapperExceptionTravelsBackWithItsMessage) {
  const pid_t parent = getpid();
  CountSpec spec = CountRound(8, /*with_combiner=*/false);
  spec.mapper = [parent](const uint32_t& input, Emitter<uint64_t>* emitter) {
    if (getpid() != parent) {
      throw std::runtime_error("mapper exploded on purpose");
    }
    emitter->Emit(input % 8, 1);
  };
  const std::vector<uint32_t> inputs = Iota(100);
  CollectingSink sink;
  try {
    RunRound(spec, std::span<const uint32_t>(inputs), &sink, nullptr,
             ExecutionPolicy::Serial().WithBackend(BackendMode::kProcess, 2));
    FAIL() << "a throwing mapper must raise in the coordinator";
  } catch (const std::runtime_error& error) {
    EXPECT_TRUE(Contains(error.what(), "map worker")) << error.what();
    EXPECT_TRUE(Contains(error.what(), "mapper exploded on purpose"))
        << error.what();
  }
}

TEST(ProcessBackend, ReducerExceptionTravelsBackWithItsMessage) {
  const pid_t parent = getpid();
  CountSpec spec = CountRound(8, /*with_combiner=*/false);
  spec.reducer = [parent](uint64_t, std::span<const uint64_t>,
                          ReduceContext*) {
    if (getpid() != parent) {
      throw std::runtime_error("reducer exploded on purpose");
    }
  };
  const std::vector<uint32_t> inputs = Iota(100);
  CollectingSink sink;
  try {
    RunRound(spec, std::span<const uint32_t>(inputs), &sink, nullptr,
             ExecutionPolicy::Serial().WithBackend(BackendMode::kProcess, 2));
    FAIL() << "a throwing reducer must raise in the coordinator";
  } catch (const std::runtime_error& error) {
    EXPECT_TRUE(Contains(error.what(), "reduce worker")) << error.what();
    EXPECT_TRUE(Contains(error.what(), "reducer exploded on purpose"))
        << error.what();
  }
}

// Empty input and empty shuffle: the process backend short-circuits
// without forking a reduce crew and still reports the same (all-zero)
// semantic metrics as the thread backend.
TEST(ProcessBackend, EmptyRoundsShortCircuit) {
  const CountSpec spec = CountRound(8, /*with_combiner=*/false);
  const std::vector<uint32_t> empty;
  CollectingSink sink;
  const MapReduceMetrics none = RunRound(
      spec, std::span<const uint32_t>(empty), &sink, nullptr,
      ExecutionPolicy::Serial().WithBackend(BackendMode::kProcess, 4));
  EXPECT_EQ(none.input_records, 0u);
  EXPECT_EQ(none.key_value_pairs, 0u);
  EXPECT_TRUE(sink.assignments().empty());

  CountSpec silent = CountRound(8, /*with_combiner=*/false);
  silent.mapper = [](const uint32_t&, Emitter<uint64_t>*) {};
  const std::vector<uint32_t> inputs = Iota(10);
  const MapReduceMetrics quiet = RunRound(
      silent, std::span<const uint32_t>(inputs), &sink, nullptr,
      ExecutionPolicy::Serial().WithBackend(BackendMode::kProcess, 4));
  EXPECT_EQ(quiet.input_records, 10u);
  EXPECT_EQ(quiet.key_value_pairs, 0u);
  EXPECT_EQ(quiet.distinct_keys, 0u);
}

}  // namespace
}  // namespace smr
