// Differential tests of the vectorized sorted-set primitives: every
// per-level variant (scalar / SSE4.2 / AVX2 x count / into / contains) must
// agree exactly with std::set_intersection / std::binary_search on the same
// inputs, across adversarial size and overlap profiles. The SIMD paths being
// exact drop-ins for the scalar one is what keeps enumeration output
// byte-identical across ISAs, so these tests are the load-bearing wall.

#include "graph/intersect.h"

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "util/arena.h"

namespace smr {
namespace {

using intersect_detail::ContainsSortedAvx2;
using intersect_detail::ContainsSortedScalar;
using intersect_detail::ContainsSortedSse42;
using intersect_detail::IntersectCountAvx2;
using intersect_detail::IntersectCountScalar;
using intersect_detail::IntersectCountSse42;
using intersect_detail::IntersectIntoAvx2;
using intersect_detail::IntersectIntoScalar;
using intersect_detail::IntersectIntoSse42;

struct Variant {
  const char* name;
  SimdLevel level;
  size_t (*count)(std::span<const NodeId>, std::span<const NodeId>);
  size_t (*into)(std::span<const NodeId>, std::span<const NodeId>, NodeId*);
  bool (*contains)(std::span<const NodeId>, NodeId);
};

std::vector<Variant> SupportedVariants() {
  std::vector<Variant> variants = {{"scalar", SimdLevel::kScalar,
                                    IntersectCountScalar, IntersectIntoScalar,
                                    ContainsSortedScalar}};
  if (SimdLevelSupported(SimdLevel::kSse42)) {
    variants.push_back({"sse4.2", SimdLevel::kSse42, IntersectCountSse42,
                        IntersectIntoSse42, ContainsSortedSse42});
  }
  if (SimdLevelSupported(SimdLevel::kAvx2)) {
    variants.push_back({"avx2", SimdLevel::kAvx2, IntersectCountAvx2,
                        IntersectIntoAvx2, ContainsSortedAvx2});
  }
  return variants;
}

std::vector<NodeId> Reference(const std::vector<NodeId>& a,
                              const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Checks every variant (and the dispatched entry points) against the
/// std::set_intersection reference, in both argument orders.
void CheckPair(const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
  const std::vector<NodeId> expected = Reference(a, b);
  for (const auto& [sa, sb] : {std::pair{&a, &b}, std::pair{&b, &a}}) {
    const size_t cap = std::min(sa->size(), sb->size()) + kIntersectSlack;
    std::vector<NodeId> out(cap, 0xDEADBEEF);
    for (const Variant& v : SupportedVariants()) {
      EXPECT_EQ(v.count(*sa, *sb), expected.size()) << v.name;
      const size_t n = v.into(*sa, *sb, out.data());
      ASSERT_EQ(n, expected.size()) << v.name;
      EXPECT_TRUE(std::equal(expected.begin(), expected.end(), out.begin()))
          << v.name;
    }
    EXPECT_EQ(IntersectCount(*sa, *sb), expected.size());
    const size_t n = IntersectInto(*sa, *sb, out.data());
    ASSERT_EQ(n, expected.size());
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(), out.begin()));
  }
}

void CheckContains(const std::vector<NodeId>& sorted,
                   const std::vector<NodeId>& probes) {
  for (const NodeId v : probes) {
    const bool expected =
        std::binary_search(sorted.begin(), sorted.end(), v);
    for (const Variant& var : SupportedVariants()) {
      EXPECT_EQ(var.contains(sorted, v), expected)
          << var.name << " probing " << v << " in list of " << sorted.size();
    }
    EXPECT_EQ(ContainsSorted(sorted, v), expected);
  }
}

std::vector<NodeId> SortedUnique(std::vector<NodeId> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

std::vector<NodeId> RandomSorted(std::mt19937* rng, size_t size,
                                 NodeId universe) {
  std::uniform_int_distribution<NodeId> dist(0, universe);
  std::vector<NodeId> values(size);
  for (NodeId& v : values) v = dist(*rng);
  return SortedUnique(std::move(values));
}

TEST(Intersect, EmptyAndSingleton) {
  CheckPair({}, {});
  CheckPair({}, {1, 2, 3});
  CheckPair({5}, {5});
  CheckPair({5}, {6});
  CheckPair({5}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
}

TEST(Intersect, DisjointAndEqual) {
  std::vector<NodeId> evens, odds;
  for (NodeId i = 0; i < 100; ++i) {
    evens.push_back(2 * i);
    odds.push_back(2 * i + 1);
  }
  CheckPair(evens, odds);
  CheckPair(evens, evens);
  // Interleaved blocks: runs of matches separated by runs of misses, which
  // exercises every lane pattern of the block kernels.
  std::vector<NodeId> blocks;
  for (NodeId i = 0; i < 100; ++i) {
    if ((i / 5) % 2 == 0) blocks.push_back(2 * i);
  }
  CheckPair(evens, blocks);
}

TEST(Intersect, UnalignedTails) {
  // Every length mod 8 on both sides, so the partial final block and the
  // scalar tail of each kernel are all hit.
  std::mt19937 rng(7);
  for (size_t la = 0; la < 20; ++la) {
    for (size_t lb : {size_t{0}, size_t{1}, size_t{3}, size_t{7}, size_t{8},
                      size_t{9}, size_t{15}, size_t{16}, size_t{17}}) {
      CheckPair(RandomSorted(&rng, la, 40), RandomSorted(&rng, lb, 40));
    }
  }
}

TEST(Intersect, RandomDense) {
  std::mt19937 rng(42);
  for (int round = 0; round < 40; ++round) {
    const auto a = RandomSorted(&rng, 200, 500);
    const auto b = RandomSorted(&rng, 200, 500);
    CheckPair(a, b);
    CheckContains(a, b);
  }
}

TEST(Intersect, SkewedOneToThousand) {
  // 1:1000 size ratio triggers the galloping path of the scalar kernel and
  // the narrow-side handling of the SIMD kernels.
  std::mt19937 rng(1234);
  for (int round = 0; round < 10; ++round) {
    const auto big = RandomSorted(&rng, 4000, 1u << 20);
    auto small = RandomSorted(&rng, 4, 1u << 20);
    // Make sure some probes hit.
    if (!big.empty()) {
      small.push_back(big[big.size() / 2]);
      small.push_back(big.back());
      small = SortedUnique(std::move(small));
    }
    CheckPair(big, small);
    CheckContains(big, small);
  }
}

TEST(Intersect, AdversarialGallopPatterns) {
  // Values chosen so each gallop probe lands just before / just after the
  // doubling boundaries: multiples of 2^k and their neighbors.
  std::vector<NodeId> big;
  for (NodeId i = 0; i < 1 << 14; ++i) big.push_back(3 * i);
  std::vector<NodeId> probes;
  for (NodeId p = 1; p < 1 << 14; p *= 2) {
    for (int delta = -2; delta <= 2; ++delta) {
      const int64_t v = 3 * static_cast<int64_t>(p) + delta;
      if (v >= 0) probes.push_back(static_cast<NodeId>(v));
    }
  }
  probes = SortedUnique(std::move(probes));
  CheckPair(big, probes);
  CheckContains(big, probes);
  // Clustered hits at the very end of the long list: galloping must not
  // overshoot past the boundary.
  std::vector<NodeId> tail(big.end() - 9, big.end());
  CheckPair(big, tail);
}

TEST(Intersect, DispatcherReportsSupportedLevel) {
  const SimdLevel level = ActiveSimdLevel();
  EXPECT_TRUE(SimdLevelSupported(level));
  EXPECT_TRUE(SimdLevelSupported(SimdLevel::kScalar));
  EXPECT_NE(SimdLevelName(level), nullptr);
}

TEST(Arena, BumpAllocationAndReset) {
  Arena arena(256);
  uint32_t* a = arena.AllocateArray<uint32_t>(10);
  uint32_t* b = arena.AllocateArray<uint32_t>(10);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  for (int i = 0; i < 10; ++i) a[i] = 100 + i;
  for (int i = 0; i < 10; ++i) b[i] = 200 + i;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a[i], 100u + i);
    EXPECT_EQ(b[i], 200u + i);
  }
  // Growth past the first chunk.
  uint32_t* big = arena.AllocateArray<uint32_t>(10000);
  big[9999] = 7;
  EXPECT_EQ(big[9999], 7u);
  const size_t grown = arena.capacity();
  // Reset rewinds but keeps the chunks: capacity is unchanged and the first
  // allocations land on the same addresses.
  arena.Reset();
  EXPECT_EQ(arena.capacity(), grown);
  uint32_t* a2 = arena.AllocateArray<uint32_t>(10);
  EXPECT_EQ(a2, a);
}

TEST(Arena, AlignmentHonored) {
  Arena arena;
  (void)arena.Allocate(1, 1);
  void* p8 = arena.Allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p8) % 8, 0u);
  (void)arena.Allocate(3, 1);
  void* p64 = arena.Allocate(64, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p64) % 64, 0u);
}

}  // namespace
}  // namespace smr
