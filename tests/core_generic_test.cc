#include <gtest/gtest.h>

#include "core/bucket_oriented.h"
#include "core/subgraph_enumerator.h"
#include "core/variable_oriented.h"
#include "cq/cq_generation.h"
#include "graph/generators.h"
#include "shares/replication_formulas.h"
#include "tests/test_util.h"
#include "util/combinatorics.h"

namespace smr {
namespace {

SampleGraph PatternById(int id) {
  switch (id) {
    case 0:
      return SampleGraph::Triangle();
    case 1:
      return SampleGraph::Square();
    case 2:
      return SampleGraph::Lollipop();
    case 3:
      return SampleGraph::Cycle(5);
    case 4:
      return SampleGraph::Clique(4);
    case 5:
      return SampleGraph::Path(4);
    default:
      return SampleGraph::Star(4);
  }
}

class BucketOrientedParam
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(BucketOrientedParam, FindsEachInstanceExactlyOnce) {
  const auto [pattern_id, buckets, seed] = GetParam();
  const SampleGraph pattern = PatternById(pattern_id);
  const Graph g = ErdosRenyi(22, 64, seed);
  const SubgraphEnumerator enumerator(pattern);
  CollectingSink sink;
  const auto metrics = enumerator.RunBucketOriented(g, buckets, seed, &sink);
  EXPECT_EQ(KeysOf(sink, pattern), GroundTruthKeys(pattern, g))
      << pattern.ToString() << " b=" << buckets << " seed=" << seed;
  // Section 4.5 exact replication: C(b+p-3, p-2) per edge.
  EXPECT_EQ(metrics.key_value_pairs,
            g.num_edges() *
                BucketOrientedEdgeReplication(buckets, pattern.num_vars()));
  EXPECT_EQ(metrics.key_space,
            BucketOrientedReducerCount(buckets, pattern.num_vars()));
  EXPECT_LE(metrics.distinct_keys, metrics.key_space);
}

INSTANTIATE_TEST_SUITE_P(Patterns, BucketOrientedParam,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Values(2, 4),
                                            ::testing::Values(1ull, 9ull)));

class VariableOrientedParam
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(VariableOrientedParam, FindsEachInstanceExactlyOnce) {
  const auto [pattern_id, seed] = GetParam();
  const SampleGraph pattern = PatternById(pattern_id);
  const Graph g = ErdosRenyi(20, 56, seed);
  const SubgraphEnumerator enumerator(pattern);
  // Uneven shares stress the per-variable hashing.
  std::vector<int> shares(pattern.num_vars(), 2);
  shares[0] = 3;
  shares[pattern.num_vars() - 1] = 1;
  CollectingSink sink;
  enumerator.RunVariableOriented(g, shares, seed, &sink);
  EXPECT_EQ(KeysOf(sink, pattern), GroundTruthKeys(pattern, g))
      << pattern.ToString() << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Patterns, VariableOrientedParam,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Values(2ull, 5ull)));

TEST(VariableOriented, CommunicationMatchesCostExpression) {
  // The shipped key-value pairs equal m * sum over subgoal terms of
  // coefficient * prod of other shares — the expression the optimizer
  // minimizes (Section 4.3).
  const SampleGraph pattern = SampleGraph::Square();
  const Graph g = ErdosRenyi(30, 120, 3);
  const SubgraphEnumerator enumerator(pattern);
  const std::vector<int> shares = {2, 3, 2, 4};
  const auto metrics = enumerator.RunVariableOriented(g, shares, 1, nullptr);
  const auto expression = CostExpression::ForCqSet(enumerator.cqs());
  const std::vector<double> shares_d(shares.begin(), shares.end());
  EXPECT_DOUBLE_EQ(metrics.ReplicationRate(),
                   expression.CostPerEdge(shares_d));
}

TEST(VariableOriented, AutoSharesApproximateBudget) {
  const SampleGraph pattern = SampleGraph::Triangle();
  const Graph g = ErdosRenyi(24, 80, 4);
  const SubgraphEnumerator enumerator(pattern);
  CollectingSink sink;
  const auto metrics = enumerator.RunVariableOrientedAuto(g, 27, 3, &sink);
  EXPECT_EQ(KeysOf(sink, pattern), GroundTruthKeys(pattern, g));
  EXPECT_EQ(metrics.key_space, 27u);  // 3*3*3 for the regular triangle
}

TEST(VariableOriented, RoundSharesFloorsAtOne) {
  EXPECT_EQ(RoundShares({0.3, 1.2, 2.6}), (std::vector<int>{1, 1, 3}));
}

TEST(GeneralizedPartition, FindsEachInstanceExactlyOnce) {
  const SampleGraph patterns[] = {SampleGraph::Triangle(),
                                  SampleGraph::Square(),
                                  SampleGraph::Lollipop()};
  for (const auto& pattern : patterns) {
    const Graph g = ErdosRenyi(20, 56, 21);
    const auto cqs = CqsForSample(pattern);
    CollectingSink sink;
    GeneralizedPartitionEnumerate(pattern, cqs, g, 6, 2, &sink);
    EXPECT_EQ(KeysOf(sink, pattern), GroundTruthKeys(pattern, g))
        << pattern.ToString();
  }
}

TEST(GeneralizedPartition, MeasuredReplicationMatchesFormulas) {
  // Section 4.5's comparison (ratio -> 1 + 1/(p-1)) is asymptotic in b; at
  // small b the binomials favor Partition. What must hold exactly at any b
  // is that measured replication matches the closed forms: expected
  // (1/b) C(b-1, p-1) + ((b-1)/b) C(b-2, p-2) for generalized Partition,
  // and exactly C(b+p-3, p-2) for bucket-oriented.
  const SampleGraph pattern = SampleGraph::Square();
  const Graph g = ErdosRenyi(300, 2400, 5);
  const auto cqs = CqsForSample(pattern);
  const int b = 10;
  const auto partition =
      GeneralizedPartitionEnumerate(pattern, cqs, g, b, 2, nullptr);
  const auto bucket = BucketOrientedEnumerate(pattern, cqs, g, b, 2, nullptr);
  EXPECT_NEAR(partition.ReplicationRate(),
              GeneralizedPartitionReplication(b, 4),
              0.1 * partition.ReplicationRate());
  EXPECT_DOUBLE_EQ(bucket.ReplicationRate(),
                   static_cast<double>(BucketOrientedEdgeReplication(b, 4)));
  EXPECT_EQ(partition.outputs, bucket.outputs);
}

TEST(BucketOriented, TrianglesAgreeWithSpecializedAlgorithm) {
  // The generic bucket-oriented path on the triangle pattern is the
  // Section 2.3 algorithm: same replication, same results.
  const Graph g = ErdosRenyi(40, 150, 8);
  const SubgraphEnumerator enumerator(SampleGraph::Triangle());
  const int b = 5;
  const auto metrics = enumerator.RunBucketOriented(g, b, 3, nullptr);
  EXPECT_EQ(metrics.key_value_pairs, g.num_edges() * static_cast<uint64_t>(b));
  EXPECT_EQ(metrics.outputs,
            enumerator.RunSerial(g, nullptr));
}

TEST(BucketOriented, PairPatternWorks) {
  // p = 2 (a single edge) is a degenerate but valid case: one reducer per
  // nondecreasing pair.
  const SampleGraph edge(2, {{0, 1}});
  const Graph g = ErdosRenyi(15, 40, 2);
  const auto cqs = CqsForSample(edge);
  CollectingSink sink;
  const auto metrics = BucketOrientedEnumerate(edge, cqs, g, 3, 1, &sink);
  EXPECT_EQ(metrics.outputs, g.num_edges());
  EXPECT_EQ(metrics.key_value_pairs, g.num_edges());  // C(b-1, 0) = 1
}

TEST(SubgraphEnumerator, FacadeEndToEnd) {
  const SubgraphEnumerator enumerator(SampleGraph::Lollipop());
  EXPECT_EQ(enumerator.cqs().size(), 6u);  // Fig. 7
  const Graph g = PreferentialAttachment(120, 3, 5);
  const uint64_t serial = enumerator.RunSerial(g, nullptr);
  const auto bucket = enumerator.RunBucketOriented(g, 4, 7, nullptr);
  EXPECT_EQ(bucket.outputs, serial);
  const auto solution = enumerator.OptimalShares(256);
  EXPECT_LT(solution.residual, 1e-3);
  const auto variable = enumerator.RunVariableOriented(
      g, RoundShares(solution.shares), 7, nullptr);
  EXPECT_EQ(variable.outputs, serial);
}

TEST(SubgraphEnumerator, SkewedGraphStillExact) {
  // A power-law graph concentrates edges at hubs; exactness must not
  // depend on balanced buckets.
  const Graph g = PreferentialAttachment(80, 2, 9);
  const SampleGraph pattern = SampleGraph::Triangle();
  const SubgraphEnumerator enumerator(pattern);
  CollectingSink sink;
  enumerator.RunBucketOriented(g, 3, 11, &sink);
  EXPECT_EQ(KeysOf(sink, pattern), GroundTruthKeys(pattern, g));
}

}  // namespace
}  // namespace smr
