// Fault-tolerance tests for the process backend (mapreduce/process_backend.h)
// driven by the deterministic injection harness (mapreduce/fault_injection.h):
// a worker killed mid-stream, a stalled link, a corrupted frame, a failed
// fork, or a failed spill append must be retried under the policy's
// RetryPolicy and produce results byte-identical to the fault-free run —
// same instances, same emission order, same semantic metrics. An exhausted
// retry budget must surface as a WorkerError naming the worker, the fault
// kind, and the attempt count (or degrade to the thread backend under
// OnExhausted::kFallbackThread), never as a hang.

#include <gtest/gtest.h>
#include <stdlib.h>

#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/strategy.h"
#include "graph/generators.h"
#include "graph/sample_graph.h"
#include "mapreduce/engine.h"
#include "mapreduce/execution_policy.h"
#include "mapreduce/fault_injection.h"
#include "mapreduce/instance_sink.h"
#include "mapreduce/job.h"
#include "mapreduce/metrics.h"
#include "mapreduce/policy_spec.h"
#include "mapreduce/worker_error.h"

namespace smr {
namespace {

Graph TestGraph() { return ErdosRenyi(60, 240, 7); }

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// Process-backend policy armed with `injector` and a retry budget of
/// `max_attempts` total attempts per worker slot (immediate retries — the
/// scenarios are deterministic, waiting teaches nothing).
ExecutionPolicy FaultyPolicy(unsigned workers, FaultInjector* injector,
                             unsigned max_attempts = 2) {
  return ExecutionPolicy::Serial()
      .WithBackend(BackendMode::kProcess, workers)
      .WithRetry(RetryPolicy{max_attempts, 0, 2.0})
      .WithFaultInjector(injector);
}

// ---------------------------------------------------------------------------
// Full-strategy differentials: injected single faults vs the serial reference
// ---------------------------------------------------------------------------

struct StrategyRun {
  uint64_t instances = 0;
  std::vector<std::vector<NodeId>> assignments;
  MapReduceMetrics metrics;
  JobMetrics job;
};

StrategyRun RunStrategy(const SampleGraph& pattern, const Graph& graph,
                        const std::string& strategy,
                        const ExecutionPolicy& policy) {
  CollectingSink sink;
  EnumerationQuery query = EnumerationQuery::Undirected(pattern, graph);
  query.WithStrategy(strategy).WithPolicy(policy).WithSink(&sink);
  const EnumerationResult result = StrategyRegistry::Global().Run(query);
  return StrategyRun{result.instances, sink.assignments(), result.metrics,
                     result.job};
}

uint64_t TotalRetries(const JobMetrics& job) {
  uint64_t total = 0;
  for (const JobRoundMetrics& round : job.rounds) {
    total += round.metrics.shuffle.worker_retries;
  }
  return total;
}

uint64_t TotalFallbacks(const JobMetrics& job) {
  uint64_t total = 0;
  for (const JobRoundMetrics& round : job.rounds) {
    total += round.metrics.shuffle.thread_fallbacks;
  }
  return total;
}

// The acceptance grid from the issue: every single-fault scenario — map
// kill, reduce kill, corrupt frames on either link, a failed fork — must
// recover within one retry and match the serial reference byte for byte:
// instance count, assignments in order, semantic metrics, and the whole
// JobMetrics chain. The injector's fire counter must agree with the
// recorded retry count, pinning that recovery actually exercised the plan.
TEST(FaultTolerance, SingleFaultScenariosRecoverByteIdentically) {
  const Graph graph = TestGraph();
  const SampleGraph triangle = SampleGraph::Triangle();
  const SampleGraph square = SampleGraph::Square();
  const struct {
    const SampleGraph* pattern;
    const char* strategy;
  } kCases[] = {
      {&triangle, "bucket:6"},
      {&square, "bucket:5"},
  };
  const char* kPlans[] = {
      "map:kill:0:after=2",
      "reduce:kill:0:after=1",
      "map:corrupt:1:after=3",
      "reduce:corrupt:0:after=2",
      "map:spawnfail:1",
  };

  for (const auto& test_case : kCases) {
    const StrategyRun expected =
        RunStrategy(*test_case.pattern, graph, test_case.strategy,
                    ExecutionPolicy::Serial());
    ASSERT_GT(expected.instances, 0u) << test_case.strategy;

    for (const char* plan : kPlans) {
      for (const unsigned workers : {2u, 4u}) {
        FaultInjector injector(ParseFaultPlan(plan));
        const StrategyRun got =
            RunStrategy(*test_case.pattern, graph, test_case.strategy,
                        FaultyPolicy(workers, &injector));
        const std::string label = std::string(test_case.strategy) +
                                  " plan=" + plan +
                                  " workers=" + std::to_string(workers);
        EXPECT_EQ(got.instances, expected.instances) << label;
        EXPECT_EQ(got.assignments, expected.assignments) << label;
        EXPECT_TRUE(got.metrics == expected.metrics) << label;
        EXPECT_TRUE(got.job == expected.job) << label;
        EXPECT_EQ(injector.fires(), 1u) << label;
        EXPECT_EQ(TotalRetries(got.job), 1u) << label;
      }
    }
  }
}

// Multi-round strategies retry per round: a map kill in one round and a
// reduce kill in another both recover, and the intermediate-record channel
// replays identically across the re-execution.
TEST(FaultTolerance, MultiRoundStrategyRecoversInEveryRound) {
  const Graph graph = TestGraph();
  const SampleGraph triangle = SampleGraph::Triangle();
  const StrategyRun expected =
      RunStrategy(triangle, graph, "tworound", ExecutionPolicy::Serial());
  ASSERT_GT(expected.instances, 0u);

  FaultInjector injector(
      ParseFaultPlan("map:kill:0:after=1;reduce:kill:0:after=0"));
  const StrategyRun got =
      RunStrategy(triangle, graph, "tworound", FaultyPolicy(4, &injector));
  EXPECT_EQ(got.instances, expected.instances);
  EXPECT_EQ(got.assignments, expected.assignments);
  EXPECT_TRUE(got.metrics == expected.metrics);
  EXPECT_TRUE(got.job == expected.job);
  EXPECT_EQ(injector.fires(), 2u);
  EXPECT_EQ(TotalRetries(got.job), 2u);
}

// ---------------------------------------------------------------------------
// Round-level differentials over a synthetic counting round
// ---------------------------------------------------------------------------

using CountSpec = RoundSpec<uint32_t, uint64_t>;

CountSpec CountRound(uint64_t keys, bool with_combiner) {
  CountSpec spec;
  spec.name = "count";
  spec.key_space = keys;
  spec.mapper = [keys](const uint32_t& input, Emitter<uint64_t>* emitter) {
    emitter->Emit(input % keys, 1);
  };
  spec.reducer = [](uint64_t key, std::span<const uint64_t> values,
                    ReduceContext* context) {
    uint64_t total = 0;
    for (const uint64_t value : values) total += value;
    const NodeId out[2] = {static_cast<NodeId>(key),
                           static_cast<NodeId>(total)};
    context->EmitInstance(out);
  };
  if (with_combiner) {
    spec.combiner = [](uint64_t& acc, const uint64_t& incoming) {
      acc += incoming;
    };
  }
  return spec;
}

std::vector<uint32_t> Iota(size_t n) {
  std::vector<uint32_t> inputs(n);
  std::iota(inputs.begin(), inputs.end(), 0u);
  return inputs;
}

TEST(FaultTolerance, RoundLevelKillsRecoverAcrossShuffleModesAndBudgets) {
  const CountSpec spec = CountRound(50, /*with_combiner=*/false);
  const std::vector<uint32_t> inputs = Iota(1000);

  CollectingSink thread_sink;
  const MapReduceMetrics thread_metrics =
      RunRound(spec, std::span<const uint32_t>(inputs), &thread_sink);

  for (const ShuffleMode mode :
       {ShuffleMode::kSort, ShuffleMode::kPartitioned}) {
    for (const uint64_t budget : {uint64_t{0}, uint64_t{64} * 1024}) {
      FaultInjector injector(
          ParseFaultPlan("map:kill:0:after=2;reduce:kill:1:after=1"));
      CollectingSink sink;
      const MapReduceMetrics metrics =
          RunRound(spec, std::span<const uint32_t>(inputs), &sink, nullptr,
                   FaultyPolicy(3, &injector)
                       .WithShuffle(mode)
                       .WithBudget(budget));
      const std::string label =
          std::string(mode == ShuffleMode::kSort ? "sort" : "partitioned") +
          " budget=" + std::to_string(budget);
      EXPECT_TRUE(metrics == thread_metrics) << label;
      EXPECT_EQ(sink.assignments(), thread_sink.assignments()) << label;
      EXPECT_EQ(metrics.shuffle.worker_retries, 2u) << label;
      EXPECT_GT(metrics.shuffle.frames_discarded, 0u) << label;
      EXPECT_EQ(metrics.shuffle.deadline_kills, 0u) << label;
      EXPECT_EQ(injector.fires(), 2u) << label;
    }
  }
}

// A stalled map link sends a frame and then goes silent; only the progress
// deadline can unwedge the round. The kill is recorded, the retry succeeds,
// and results are identical to the fault-free run.
TEST(FaultTolerance, StalledMapWorkerIsKilledByDeadlineAndRetried) {
  const CountSpec spec = CountRound(50, /*with_combiner=*/false);
  const std::vector<uint32_t> inputs = Iota(1000);

  CollectingSink thread_sink;
  const MapReduceMetrics thread_metrics =
      RunRound(spec, std::span<const uint32_t>(inputs), &thread_sink);

  FaultInjector injector(ParseFaultPlan("map:stall:0:after=1"));
  CollectingSink sink;
  const MapReduceMetrics metrics =
      RunRound(spec, std::span<const uint32_t>(inputs), &sink, nullptr,
               FaultyPolicy(2, &injector).WithDeadline(400));
  EXPECT_TRUE(metrics == thread_metrics);
  EXPECT_EQ(sink.assignments(), thread_sink.assignments());
  EXPECT_EQ(metrics.shuffle.deadline_kills, 1u);
  EXPECT_EQ(metrics.shuffle.worker_retries, 1u);
}

TEST(FaultTolerance, StalledReduceWorkerIsKilledByDeadlineAndRetried) {
  const CountSpec spec = CountRound(50, /*with_combiner=*/false);
  const std::vector<uint32_t> inputs = Iota(1000);

  CollectingSink thread_sink;
  const MapReduceMetrics thread_metrics =
      RunRound(spec, std::span<const uint32_t>(inputs), &thread_sink);

  FaultInjector injector(ParseFaultPlan("reduce:stall:0:after=0"));
  CollectingSink sink;
  const MapReduceMetrics metrics =
      RunRound(spec, std::span<const uint32_t>(inputs), &sink, nullptr,
               FaultyPolicy(2, &injector).WithDeadline(400));
  EXPECT_TRUE(metrics == thread_metrics);
  EXPECT_EQ(sink.assignments(), thread_sink.assignments());
  EXPECT_EQ(metrics.shuffle.deadline_kills, 1u);
  EXPECT_EQ(metrics.shuffle.worker_retries, 1u);
}

// A spill append that fails while one map link is drained (the budget is
// tight enough that the round really spills) discards the attempt, retries
// with a healthy store, and matches the unbudgeted thread run.
TEST(FaultTolerance, SpillAppendFailureIsRetriedWithoutChangingResults) {
  const CountSpec spec = CountRound(256, /*with_combiner=*/false);
  const std::vector<uint32_t> inputs = Iota(20000);

  CollectingSink thread_sink;
  const MapReduceMetrics thread_metrics =
      RunRound(spec, std::span<const uint32_t>(inputs), &thread_sink);

  FaultInjector injector(ParseFaultPlan("map:spillfail:0"));
  CollectingSink sink;
  const MapReduceMetrics metrics =
      RunRound(spec, std::span<const uint32_t>(inputs), &sink, nullptr,
               FaultyPolicy(2, &injector).WithBudget(16 * 1024));
  EXPECT_TRUE(metrics == thread_metrics);
  EXPECT_EQ(sink.assignments(), thread_sink.assignments());
  EXPECT_EQ(metrics.shuffle.worker_retries, 1u);
  EXPECT_EQ(injector.fires(FaultKind::kFailSpillAppend), 1u);
  EXPECT_GT(metrics.shuffle.pages_spilled, 0u);
}

// ---------------------------------------------------------------------------
// Exhaustion: WorkerError taxonomy and graceful degradation
// ---------------------------------------------------------------------------

TEST(FaultTolerance, ExhaustedRetriesSurfaceAsWorkerErrorNamingTheWorker) {
  const CountSpec spec = CountRound(8, /*with_combiner=*/false);
  const std::vector<uint32_t> inputs = Iota(100);

  FaultInjector injector(ParseFaultPlan("map:kill:0:after=1:times=3"));
  CollectingSink sink;
  try {
    RunRound(spec, std::span<const uint32_t>(inputs), &sink, nullptr,
             FaultyPolicy(2, &injector, /*max_attempts=*/2));
    FAIL() << "an exhausted retry budget must raise";
  } catch (const WorkerError& error) {
    EXPECT_EQ(error.kind(), WorkerErrorKind::kCrash);
    EXPECT_EQ(error.role(), "map");
    EXPECT_EQ(error.worker(), 0u);
    EXPECT_EQ(error.attempts(), 2u);
    EXPECT_TRUE(Contains(error.what(), "map worker 0")) << error.what();
    EXPECT_TRUE(Contains(error.what(), "killed by signal 9"))
        << error.what();
    EXPECT_TRUE(Contains(error.what(), "worker-crash")) << error.what();
    EXPECT_TRUE(Contains(error.what(), "gave up after 2 attempts"))
        << error.what();
  }
  // 2 attempts armed, one `times` left unspent.
  EXPECT_EQ(injector.fires(), 2u);
}

TEST(FaultTolerance, ExhaustedSpawnFailuresCarryTheirKind) {
  const CountSpec spec = CountRound(8, /*with_combiner=*/false);
  const std::vector<uint32_t> inputs = Iota(100);

  FaultInjector injector(ParseFaultPlan("map:spawnfail:1:times=2"));
  CollectingSink sink;
  try {
    RunRound(spec, std::span<const uint32_t>(inputs), &sink, nullptr,
             FaultyPolicy(2, &injector, /*max_attempts=*/2));
    FAIL() << "an exhausted retry budget must raise";
  } catch (const WorkerError& error) {
    EXPECT_EQ(error.kind(), WorkerErrorKind::kSpawnFailure);
    EXPECT_EQ(error.role(), "map");
    EXPECT_EQ(error.worker(), 1u);
    EXPECT_TRUE(Contains(error.what(), "injected spawn failure"))
        << error.what();
    EXPECT_TRUE(Contains(error.what(), "spawn-failure")) << error.what();
  }
}

// OnExhausted::kFallbackThread: the round whose worker keeps dying is
// re-run on the in-memory backend — same results, and the degradation is
// visible in thread_fallbacks.
TEST(FaultTolerance, FallbackReproducesResultsOnTheThreadBackend) {
  const CountSpec spec = CountRound(50, /*with_combiner=*/false);
  const std::vector<uint32_t> inputs = Iota(1000);

  CollectingSink thread_sink;
  const MapReduceMetrics thread_metrics =
      RunRound(spec, std::span<const uint32_t>(inputs), &thread_sink);

  FaultInjector injector(ParseFaultPlan("map:kill:0:after=1:times=99"));
  CollectingSink sink;
  const MapReduceMetrics metrics = RunRound(
      spec, std::span<const uint32_t>(inputs), &sink, nullptr,
      FaultyPolicy(3, &injector, /*max_attempts=*/2)
          .WithOnExhausted(OnExhausted::kFallbackThread));
  EXPECT_TRUE(metrics == thread_metrics);
  EXPECT_EQ(sink.assignments(), thread_sink.assignments());
  EXPECT_EQ(metrics.shuffle.thread_fallbacks, 1u);
  EXPECT_EQ(metrics.shuffle.worker_retries, 1u);
}

// The fallback composes with whole strategies: a worker slot that dies on
// every attempt of every round degrades each round to the thread backend
// and the job still matches the serial reference exactly.
TEST(FaultTolerance, FallbackKeepsWholeStrategiesByteIdentical) {
  const Graph graph = TestGraph();
  const SampleGraph triangle = SampleGraph::Triangle();
  const StrategyRun expected =
      RunStrategy(triangle, graph, "tworound", ExecutionPolicy::Serial());

  FaultInjector injector(ParseFaultPlan("map:kill:0:after=0:times=99"));
  const StrategyRun got = RunStrategy(
      triangle, graph, "tworound",
      FaultyPolicy(4, &injector, /*max_attempts=*/2)
          .WithOnExhausted(OnExhausted::kFallbackThread));
  EXPECT_EQ(got.instances, expected.instances);
  EXPECT_EQ(got.assignments, expected.assignments);
  EXPECT_TRUE(got.metrics == expected.metrics);
  EXPECT_TRUE(got.job == expected.job);
  EXPECT_GE(TotalFallbacks(got.job), 1u);
}

// ---------------------------------------------------------------------------
// Golden pin: the paper's Fig. 1 scenario survives losing a mapper
// ---------------------------------------------------------------------------

TEST(FaultTolerance, GoldenFig1TriangleCountSurvivesAMapperKill) {
  const Graph g = ErdosRenyi(2000, 20000, 42);
  FaultInjector injector(ParseFaultPlan("map:kill:1:after=5"));
  const StrategyRun got = RunStrategy(SampleGraph::Triangle(), g, "bucket:6",
                                      FaultyPolicy(3, &injector));
  EXPECT_EQ(got.instances, 1388u);
  EXPECT_EQ(injector.fires(), 1u);
  EXPECT_EQ(TotalRetries(got.job), 1u);
}

// ---------------------------------------------------------------------------
// FaultPlan grammar
// ---------------------------------------------------------------------------

TEST(FaultPlanGrammar, ParsesSpecsOptionsAndSeed) {
  const FaultPlan plan = ParseFaultPlan(
      " map:kill:0 ; reduce : stall : 1 : after=3 ;"
      " map:corrupt:2:after=5:times=2 ; seed=9 ;; map:spillfail:0 ");
  ASSERT_EQ(plan.faults.size(), 4u);
  EXPECT_EQ(plan.seed, 9u);

  EXPECT_EQ(plan.faults[0].role, WorkerRole::kMap);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::kKillAfterFrames);
  EXPECT_EQ(plan.faults[0].worker, 0u);
  EXPECT_EQ(plan.faults[0].times, 1u);
  EXPECT_LT(plan.faults[0].after_frames, 8u);  // seed-derived default

  EXPECT_EQ(plan.faults[1].role, WorkerRole::kReduce);
  EXPECT_EQ(plan.faults[1].kind, FaultKind::kStallLink);
  EXPECT_EQ(plan.faults[1].worker, 1u);
  EXPECT_EQ(plan.faults[1].after_frames, 3u);

  EXPECT_EQ(plan.faults[2].kind, FaultKind::kCorruptFrame);
  EXPECT_EQ(plan.faults[2].after_frames, 5u);
  EXPECT_EQ(plan.faults[2].times, 2u);

  EXPECT_EQ(plan.faults[3].kind, FaultKind::kFailSpillAppend);
}

TEST(FaultPlanGrammar, DerivedAfterFramesAreDeterministic) {
  const FaultPlan first = ParseFaultPlan("map:kill:0;seed=7");
  const FaultPlan second = ParseFaultPlan("map:kill:0;seed=7");
  ASSERT_EQ(first.faults.size(), 1u);
  EXPECT_EQ(first.faults[0].after_frames, second.faults[0].after_frames);
  EXPECT_LT(first.faults[0].after_frames, 8u);

  EXPECT_TRUE(ParseFaultPlan("").faults.empty());
}

TEST(FaultPlanGrammar, RejectsMalformedPlansLoudly) {
  const struct {
    const char* plan;
    const char* message;
  } kBad[] = {
      {"map:kill", "needs role:kind:worker"},
      {"cook:kill:0", "role must be map or reduce"},
      {"map:melt:0", "kind must be kill, stall, corrupt"},
      {"reduce:spillfail:0", "role must be map"},
      {"map:kill:zero", "worker index needs a nonnegative integer"},
      {"map:kill:0:after=soon", "after needs a nonnegative integer"},
      {"map:kill:0:times=0", "times must be >= 1"},
      {"map:kill:0:when=now", "unknown option"},
      {"seed=letters", "seed needs a nonnegative integer"},
  };
  for (const auto& bad : kBad) {
    try {
      ParseFaultPlan(bad.plan);
      FAIL() << bad.plan << " must be rejected";
    } catch (const std::invalid_argument& error) {
      EXPECT_TRUE(Contains(error.what(), "fault plan:")) << error.what();
      EXPECT_TRUE(Contains(error.what(), bad.message))
          << bad.plan << " -> " << error.what();
    }
  }
}

TEST(FaultPlanGrammar, EnvInjectorTracksTheVariable) {
  ASSERT_EQ(setenv("SMR_FAULT_PLAN", "map:kill:0:after=2", 1), 0);
  FaultInjector* injector = EnvFaultInjector();
  ASSERT_NE(injector, nullptr);
  ASSERT_EQ(injector->plan().faults.size(), 1u);
  EXPECT_EQ(injector->plan().faults[0].after_frames, 2u);
  // Same value: the cached injector (and its `times` bookkeeping) persists.
  EXPECT_EQ(EnvFaultInjector(), injector);

  ASSERT_EQ(unsetenv("SMR_FAULT_PLAN"), 0);
  EXPECT_EQ(EnvFaultInjector(), nullptr);
}

// ---------------------------------------------------------------------------
// Policy spec plumbing for the CLI flags
// ---------------------------------------------------------------------------

TEST(FaultPolicySpec, ParsesRetriesDeadlineAndFallback) {
  const ExecutionPolicy policy =
      PolicyFromSpecs("1", "partition", "auto", "on", "0", "process:4", "2",
                      "30000", "fallback");
  EXPECT_EQ(policy.retry.max_attempts, 3u);  // 2 retries = 3 attempts
  EXPECT_EQ(policy.worker_deadline_ms, 30000u);
  EXPECT_EQ(policy.on_exhausted, OnExhausted::kFallbackThread);

  const std::string described = DescribePolicy(policy);
  EXPECT_TRUE(Contains(described, "process backend (4 workers)"))
      << described;
  EXPECT_TRUE(Contains(described, "2 retries")) << described;
  EXPECT_TRUE(Contains(described, "deadline 30000 ms")) << described;
  EXPECT_TRUE(Contains(described, "fall back to threads")) << described;

  const std::string one_retry = DescribePolicy(PolicyFromSpecs(
      "1", "partition", "auto", "on", "0", "process:2", "1", "0", "fail"));
  EXPECT_TRUE(Contains(one_retry, "1 retry")) << one_retry;
  EXPECT_TRUE(Contains(one_retry, "no deadline")) << one_retry;

  // Defaults print exactly as before the fault-tolerance knobs existed.
  const std::string plain = DescribePolicy(
      PolicyFromSpecs("1", "partition", "auto", "on", "0", "process:4"));
  EXPECT_FALSE(Contains(plain, "retr")) << plain;
  EXPECT_FALSE(Contains(plain, "deadline")) << plain;
}

TEST(FaultPolicySpec, RejectsBadFaultKnobs) {
  EXPECT_THROW(PolicyFromSpecs("1", "partition", "auto", "on", "0", "thread",
                               "-1"),
               std::invalid_argument);
  EXPECT_THROW(PolicyFromSpecs("1", "partition", "auto", "on", "0", "thread",
                               "101"),
               std::invalid_argument);
  EXPECT_THROW(PolicyFromSpecs("1", "partition", "auto", "on", "0", "thread",
                               "0", "soon"),
               std::invalid_argument);
  EXPECT_THROW(PolicyFromSpecs("1", "partition", "auto", "on", "0", "thread",
                               "0", "", "maybe"),
               std::invalid_argument);
}

}  // namespace
}  // namespace smr
