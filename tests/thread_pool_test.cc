// The persistent worker pool behind the engine's parallel phases
// (mapreduce/thread_pool.h): RunWorkers-compatible dispatch (task 0 on the
// caller, join-all, lowest-index exception rethrown), thread reuse across
// dispatches (the whole point — a multi-round job must not respawn threads
// per phase), and oversubscribed dispatches draining through a capped pool.

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/triangle_census.h"
#include "graph/generators.h"
#include "graph/node_order.h"
#include "mapreduce/job.h"
#include "mapreduce/thread_pool.h"

namespace smr {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnceWithTaskZeroOnCaller) {
  ThreadPool pool;
  const size_t kTasks = 6;
  std::vector<std::atomic<int>> runs(kTasks);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id task0_thread;
  pool.Run(kTasks, [&](size_t t) {
    ++runs[t];
    if (t == 0) task0_thread = std::this_thread::get_id();
  });
  for (size_t t = 0; t < kTasks; ++t) EXPECT_EQ(runs[t].load(), 1) << t;
  EXPECT_EQ(task0_thread, caller);
}

TEST(ThreadPool, SingleTaskRunsInlineWithoutTouchingThePool) {
  ThreadPool pool;
  bool ran = false;
  const ThreadPool::RunStats stats = pool.Run(1, [&](size_t t) {
    EXPECT_EQ(t, 0u);
    ran = true;
  });
  EXPECT_TRUE(ran);
  EXPECT_EQ(stats.spawned, 0u);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.dispatches(), 0u);
}

TEST(ThreadPool, ReusesParkedThreadsAcrossDispatches) {
  ThreadPool pool;
  const ThreadPool::RunStats first = pool.Run(4, [](size_t) {});
  EXPECT_EQ(first.spawned, 3u);
  EXPECT_EQ(first.reused, 0u);
  for (int round = 0; round < 5; ++round) {
    const ThreadPool::RunStats later = pool.Run(4, [](size_t) {});
    EXPECT_EQ(later.spawned, 0u) << round;
    EXPECT_EQ(later.reused, 3u) << round;
  }
  EXPECT_EQ(pool.threads_spawned(), 3u);
  EXPECT_EQ(pool.dispatches(), 6u);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, GrowsOnlyByTheMissingThreads) {
  ThreadPool pool;
  pool.Run(3, [](size_t) {});
  EXPECT_EQ(pool.threads_spawned(), 2u);
  const ThreadPool::RunStats grown = pool.Run(8, [](size_t) {});
  EXPECT_EQ(grown.spawned, 5u);  // 2 parked + 5 new = 7 helpers.
  EXPECT_EQ(grown.reused, 2u);
  EXPECT_EQ(pool.threads_spawned(), 7u);
}

TEST(ThreadPool, OversubscribedDispatchDrainsThroughCappedPool) {
  ThreadPool pool(/*max_threads=*/2);
  const size_t kTasks = 64;
  std::vector<std::atomic<int>> runs(kTasks);
  const ThreadPool::RunStats stats = pool.Run(kTasks, [&](size_t t) {
    ++runs[t];
  });
  for (size_t t = 0; t < kTasks; ++t) EXPECT_EQ(runs[t].load(), 1) << t;
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(stats.spawned, 2u);
  EXPECT_EQ(stats.reused, kTasks - 1 - 2);
}

TEST(ThreadPool, RethrowsLowestIndexException) {
  ThreadPool pool;
  const auto throwing = [](size_t t) {
    if (t == 5) throw std::runtime_error("task 5");
    if (t == 2) throw std::out_of_range("task 2");
  };
  // Repeat: the first throwing task to *finish* varies with scheduling,
  // but the rethrown one must always be the lowest index.
  for (int attempt = 0; attempt < 20; ++attempt) {
    EXPECT_THROW(pool.Run(8, throwing), std::out_of_range);
  }
}

TEST(ThreadPool, ExceptionInCallerTaskZeroSurfaces) {
  ThreadPool pool;
  EXPECT_THROW(pool.Run(4,
                        [](size_t t) {
                          if (t == 0) throw std::logic_error("caller task");
                        }),
               std::logic_error);
  // The pool survives a throwing dispatch and keeps serving.
  std::atomic<int> total{0};
  pool.Run(4, [&](size_t) { ++total; });
  EXPECT_EQ(total.load(), 4);
}

TEST(ThreadPool, EngineRoundsUnderOneDriverReuseThePool) {
  // A multi-round job through JobDriver must spawn threads only in its
  // first parallel phase: every later phase's ShuffleStats shows reuse
  // and no spawns. This is the tentpole's "fewer thread spawns than
  // rounds x phases" guarantee, checked at the metrics level.
  const ExecutionPolicy policy = ExecutionPolicy::WithThreads(4);
  // Materialize the pool before the driver copies the policy, so the
  // copy shares it and its counters stay observable from here.
  policy.EnsurePool();
  std::vector<int> inputs(4000);
  for (size_t i = 0; i < inputs.size(); ++i) inputs[i] = static_cast<int>(i);
  const RoundSpec<int, int> round{
      "pool-reuse",
      [](const int& v, Emitter<int>* out) {
        out->Emit(static_cast<uint64_t>(v) % 97, v);
      },
      [](uint64_t, std::span<const int> values, ReduceContext* context) {
        context->cost->edges_scanned += values.size();
      },
      97,
      {}};

  JobDriver driver(policy);
  const MapReduceMetrics first = driver.RunRound(round, inputs, nullptr);
  EXPECT_GT(first.shuffle.pool_threads_spawned, 0u);
  for (int r = 0; r < 3; ++r) {
    const MapReduceMetrics later = driver.RunRound(round, inputs, nullptr);
    EXPECT_EQ(later.shuffle.pool_threads_spawned, 0u) << r;
    EXPECT_GT(later.shuffle.pool_tasks_reused, 0u) << r;
  }
  EXPECT_EQ(policy.pool->threads_spawned(), 3u);
}

TEST(ThreadPool, TriangleCensusSpawnsFarFewerThreadsThanPhases) {
  // The tentpole's acceptance shape: a real multi-round job (the 3-round
  // triangle census, 2 parallel phases per round) must show thread spawns
  // bounded by the pool size — not rounds x phases x workers — and
  // nonzero reuse after the first phase.
  const Graph graph = ErdosRenyi(400, 3000, 7);
  const ExecutionPolicy policy = ExecutionPolicy::WithThreads(4);
  policy.EnsurePool();  // Share the pool with the job's policy copy.
  const TriangleCensusResult result =
      TriangleCensus(graph, NodeOrder::ByDegree(graph), policy);
  ASSERT_EQ(result.job.rounds.size(), 3u);
  uint64_t spawned = 0;
  uint64_t reused = 0;
  for (const JobRoundMetrics& round : result.job.rounds) {
    spawned += round.metrics.shuffle.pool_threads_spawned;
    reused += round.metrics.shuffle.pool_tasks_reused;
  }
  EXPECT_LE(spawned, 3u);  // At most num_threads - 1, ever.
  EXPECT_GT(reused, 0u);
  EXPECT_EQ(spawned, policy.pool->threads_spawned());
}

}  // namespace
}  // namespace smr
