#include <gtest/gtest.h>

#include "core/triangle_algorithms.h"
#include "graph/generators.h"
#include "serial/triangles.h"
#include "shares/replication_formulas.h"
#include "tests/test_util.h"
#include "util/combinatorics.h"

namespace smr {
namespace {

/// All three algorithms against the serial ground truth, across graphs,
/// bucket counts, and hash seeds.
class TriangleMrAlgorithms
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(TriangleMrAlgorithms, AllThreeFindEachTriangleOnce) {
  const auto [buckets, seed] = GetParam();
  const Graph g = ErdosRenyi(60, 220, seed);
  const SampleGraph triangle = SampleGraph::Triangle();
  const auto expected = GroundTruthKeys(triangle, g);

  CollectingSink partition_sink;
  PartitionTriangles(g, std::max(buckets, 3), seed, &partition_sink);
  EXPECT_EQ(KeysOf(partition_sink, triangle), expected) << "partition";

  CollectingSink multiway_sink;
  MultiwayJoinTriangles(g, buckets, seed, &multiway_sink);
  EXPECT_EQ(KeysOf(multiway_sink, triangle), expected) << "multiway";

  CollectingSink ordered_sink;
  OrderedBucketTriangles(g, buckets, seed, &ordered_sink);
  EXPECT_EQ(KeysOf(ordered_sink, triangle), expected) << "ordered";
}

INSTANTIATE_TEST_SUITE_P(BucketsBySeed, TriangleMrAlgorithms,
                         ::testing::Combine(::testing::Values(3, 4, 6, 10),
                                            ::testing::Values(1ull, 2ull,
                                                              3ull)));

TEST(MultiwayJoinTriangles, CommunicationIsExactly3bMinus2) {
  // Section 2.2: each edge goes to exactly 3b-2 distinct reducers.
  const Graph g = ErdosRenyi(50, 200, 7);
  for (int b : {2, 4, 8}) {
    const auto metrics = MultiwayJoinTriangles(g, b, 1, nullptr);
    EXPECT_EQ(metrics.key_value_pairs,
              g.num_edges() * (3 * static_cast<uint64_t>(b) - 2))
        << "b=" << b;
    EXPECT_EQ(metrics.key_space, static_cast<uint64_t>(b) * b * b);
  }
}

TEST(OrderedBucketTriangles, CommunicationIsExactlyB) {
  // Section 2.3: each edge is replicated exactly b times.
  const Graph g = ErdosRenyi(50, 200, 7);
  for (int b : {2, 4, 8, 12}) {
    const auto metrics = OrderedBucketTriangles(g, b, 1, nullptr);
    EXPECT_EQ(metrics.key_value_pairs, g.num_edges() * static_cast<uint64_t>(b))
        << "b=" << b;
    EXPECT_EQ(metrics.key_space, Binomial(b + 2, 3));
    EXPECT_LE(metrics.distinct_keys, metrics.key_space);
  }
}

TEST(PartitionTriangles, CommunicationMatchesExpectedFormula) {
  // Section 2.1: (1/b) of edges to C(b-1,2) reducers, the rest to b-2.
  const Graph g = ErdosRenyi(400, 3000, 3);
  for (int b : {4, 8, 12}) {
    const auto metrics = PartitionTriangles(g, b, 5, nullptr);
    const double expected_per_edge =
        (1.0 / b) * Binomial(b - 1, 2) + (1.0 - 1.0 / b) * (b - 2);
    EXPECT_NEAR(metrics.ReplicationRate(), expected_per_edge,
                0.12 * expected_per_edge)
        << "b=" << b;
    EXPECT_EQ(metrics.key_space, Binomial(b, 3));
  }
}

TEST(PartitionTriangles, RejectsTooFewGroups) {
  const Graph g = ErdosRenyi(10, 20, 1);
  EXPECT_THROW(PartitionTriangles(g, 2, 1, nullptr), std::invalid_argument);
}

TEST(TriangleAlgorithms, OutputsCountEvenWithoutSink) {
  const Graph g = ErdosRenyi(40, 160, 9);
  const uint64_t expected = CountTriangles(g);
  EXPECT_EQ(MultiwayJoinTriangles(g, 4, 2, nullptr).outputs, expected);
  EXPECT_EQ(OrderedBucketTriangles(g, 4, 2, nullptr).outputs, expected);
  EXPECT_EQ(PartitionTriangles(g, 4, 2, nullptr).outputs, expected);
}

TEST(TriangleAlgorithms, Fig2CommunicationComparison) {
  // Fig. 2: at comparable reducer counts (Partition b=12 -> 220 reducers,
  // multiway b=6 -> 216, ordered b=10 -> 220), the measured per-edge
  // replication is 13.75m vs 16m vs 10m.
  const Graph g = ErdosRenyi(500, 4000, 11);
  const auto partition = PartitionTriangles(g, 12, 3, nullptr);
  const auto multiway = MultiwayJoinTriangles(g, 6, 3, nullptr);
  const auto ordered = OrderedBucketTriangles(g, 10, 3, nullptr);
  EXPECT_NEAR(partition.ReplicationRate(), 13.75, 13.75 * 0.1);
  EXPECT_DOUBLE_EQ(multiway.ReplicationRate(), 16.0);
  EXPECT_DOUBLE_EQ(ordered.ReplicationRate(), 10.0);
  // The ordered-bucket algorithm wins, Partition second, multiway last.
  EXPECT_LT(ordered.ReplicationRate(), partition.ReplicationRate());
  EXPECT_LT(partition.ReplicationRate(), multiway.ReplicationRate());
}

TEST(TriangleAlgorithms, OrderedBucketUsesOnlyNondecreasingTriples) {
  // Theorem 4.2 consequence: reducers receiving data never exceed
  // C(b+2, 3) even when b^3 would be much larger.
  const Graph g = ErdosRenyi(300, 2500, 13);
  const int b = 8;
  const auto metrics = OrderedBucketTriangles(g, b, 1, nullptr);
  EXPECT_EQ(metrics.key_space, Binomial(b + 2, 3));
  // Dense enough that every useful reducer receives at least one edge.
  EXPECT_EQ(metrics.distinct_keys, Binomial(b + 2, 3));
}

TEST(TriangleAlgorithms, ComputationCostIsConvertible) {
  // Theorem 6.1 instantiated: total reducer operation count stays within a
  // constant factor of the serial cost as b grows (here: it must not grow
  // superlinearly with b).
  const Graph g = ErdosRenyi(300, 2400, 17);
  CostCounter serial_cost;
  EnumerateTriangles(g, NodeOrder::Identity(g.num_nodes()), nullptr,
                     &serial_cost);
  const auto m4 = OrderedBucketTriangles(g, 4, 1, nullptr);
  const auto m8 = OrderedBucketTriangles(g, 8, 1, nullptr);
  const double ratio4 =
      static_cast<double>(m4.reduce_cost.Total()) / serial_cost.Total();
  const double ratio8 =
      static_cast<double>(m8.reduce_cost.Total()) / serial_cost.Total();
  // Reducer work is the same order as serial work (constant-factor
  // overhead, not growing with the number of reducers).
  EXPECT_LT(ratio8, 3 * ratio4 + 3);
}

TEST(TriangleAlgorithms, SingleBucketDegeneratesToSerial) {
  const Graph g = ErdosRenyi(30, 100, 19);
  const auto metrics = MultiwayJoinTriangles(g, 1, 1, nullptr);
  EXPECT_EQ(metrics.key_value_pairs, g.num_edges());
  EXPECT_EQ(metrics.outputs, CountTriangles(g));
}

TEST(TriangleAlgorithms, TriangleFreeGraphYieldsNothing) {
  const Graph g = CompleteBipartite(6, 6);
  EXPECT_EQ(MultiwayJoinTriangles(g, 4, 1, nullptr).outputs, 0u);
  EXPECT_EQ(OrderedBucketTriangles(g, 4, 1, nullptr).outputs, 0u);
  EXPECT_EQ(PartitionTriangles(g, 4, 1, nullptr).outputs, 0u);
}

}  // namespace
}  // namespace smr
