#include <set>

#include <gtest/gtest.h>

#include "directed/directed_enumeration.h"
#include "directed/directed_graph.h"
#include "util/rng.h"

namespace smr {
namespace {

DirectedGraph RandomDigraph(NodeId n, size_t m, uint64_t seed) {
  Rng rng(seed);
  std::set<Arc> seen;
  std::vector<Arc> arcs;
  while (arcs.size() < m) {
    NodeId u = static_cast<NodeId>(rng.Below(n));
    NodeId v = static_cast<NodeId>(rng.Below(n));
    if (u == v) continue;
    if (!seen.insert({u, v}).second) continue;
    arcs.emplace_back(u, v);
  }
  return DirectedGraph(n, std::move(arcs));
}

TEST(DirectedGraph, BasicAdjacency) {
  DirectedGraph g(4, {{0, 1}, {1, 2}, {2, 0}, {0, 2}});
  EXPECT_EQ(g.num_arcs(), 4u);
  EXPECT_TRUE(g.HasArc(0, 1));
  EXPECT_FALSE(g.HasArc(1, 0));
  EXPECT_TRUE(g.HasArc(0, 2));
  EXPECT_TRUE(g.HasArc(2, 0));  // antiparallel pair allowed
  ASSERT_EQ(g.Successors(0).size(), 2u);
  ASSERT_EQ(g.Predecessors(0).size(), 1u);
  EXPECT_EQ(g.Predecessors(0)[0], 2u);
}

TEST(DirectedGraph, RejectsBadArcs) {
  EXPECT_THROW(DirectedGraph(3, {{1, 1}}), std::invalid_argument);
  EXPECT_THROW(DirectedGraph(3, {{0, 3}}), std::invalid_argument);
}

TEST(DirectedSampleGraph, AutomorphismGroups) {
  // The 3-cycle triad has the cyclic group C3 (3 automorphisms) — the
  // reflection reverses arcs, so it's excluded (vs 6 for the undirected
  // triangle). The feed-forward loop is rigid.
  EXPECT_EQ(DirectedSampleGraph::CycleTriad().Automorphisms().size(), 3u);
  EXPECT_EQ(DirectedSampleGraph::FeedForwardLoop().Automorphisms().size(),
            1u);
  EXPECT_EQ(DirectedSampleGraph::DirectedCycle(5).Automorphisms().size(), 5u);
  EXPECT_EQ(DirectedSampleGraph::DirectedPath(4).Automorphisms().size(), 1u);
}

TEST(DirectedMatcher, HandCounts) {
  // Graph: 3-cycle 0->1->2->0 plus chord 0->2.
  DirectedGraph g(3, {{0, 1}, {1, 2}, {2, 0}, {0, 2}});
  EXPECT_EQ(EnumerateDirectedInstances(DirectedSampleGraph::CycleTriad(), g,
                                       nullptr, nullptr),
            1u);
  EXPECT_EQ(EnumerateDirectedInstances(DirectedSampleGraph::FeedForwardLoop(),
                                       g, nullptr, nullptr),
            1u);
  // Directed 2-paths x->y->z: 0->1->2, 1->2->0, 2->0->1, 2->0->2? no —
  // distinct nodes: 0->1->2, 1->2->0, 2->0->1, 2->0->2 invalid, 0->2->0
  // invalid, 1->2->0 counted, plus 0->2 chord: x->y->z via 0->2->0 invalid;
  // through chord: ?->0->2: 2->0->2 invalid; 0->2->0 invalid. Total 3.
  EXPECT_EQ(EnumerateDirectedInstances(DirectedSampleGraph::DirectedPath(3),
                                       g, nullptr, nullptr),
            3u);
}

TEST(DirectedMatcher, CycleOrientationMatters) {
  // A directed 4-cycle contains the directed C4 once; reversing one arc
  // destroys it.
  DirectedGraph cycle(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(EnumerateDirectedInstances(DirectedSampleGraph::DirectedCycle(4),
                                       cycle, nullptr, nullptr),
            1u);
  DirectedGraph broken(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  EXPECT_EQ(EnumerateDirectedInstances(DirectedSampleGraph::DirectedCycle(4),
                                       broken, nullptr, nullptr),
            0u);
}

TEST(DirectedMatcher, FeedForwardInTournament) {
  // Acyclic tournament on 4 nodes (all arcs low -> high): every 3-subset is
  // a feed-forward loop, none is a cyclic triad.
  std::vector<Arc> arcs;
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) arcs.emplace_back(u, v);
  }
  DirectedGraph tournament(4, std::move(arcs));
  EXPECT_EQ(EnumerateDirectedInstances(DirectedSampleGraph::FeedForwardLoop(),
                                       tournament, nullptr, nullptr),
            4u);
  EXPECT_EQ(EnumerateDirectedInstances(DirectedSampleGraph::CycleTriad(),
                                       tournament, nullptr, nullptr),
            0u);
}

class DirectedMrParam
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(DirectedMrParam, BucketOrientedMatchesSerial) {
  const auto [buckets, seed] = GetParam();
  const DirectedGraph g = RandomDigraph(24, 90, seed);
  const DirectedSampleGraph patterns[] = {
      DirectedSampleGraph::CycleTriad(),
      DirectedSampleGraph::FeedForwardLoop(),
      DirectedSampleGraph::DirectedCycle(4),
      DirectedSampleGraph::DirectedPath(4),
      DirectedSampleGraph(4, {{0, 1}, {0, 2}, {0, 3}}),  // out-star
  };
  for (const auto& pattern : patterns) {
    CollectingSink mr_sink;
    const auto metrics =
        DirectedBucketOrientedEnumerate(pattern, g, buckets, seed, &mr_sink);
    CollectingSink serial_sink;
    EnumerateDirectedInstances(pattern, g, &serial_sink, nullptr);
    // Compare assignment multisets (sorted) — directed instances are
    // identified by their full assignments up to automorphism, and both
    // sides emit canonical embeddings, so the sorted assignment lists must
    // agree exactly.
    auto mr = mr_sink.assignments();
    auto serial = serial_sink.assignments();
    std::sort(mr.begin(), mr.end());
    std::sort(serial.begin(), serial.end());
    EXPECT_EQ(mr, serial) << pattern.ToString() << " b=" << buckets
                          << " seed=" << seed;
    EXPECT_EQ(metrics.outputs, serial.size());
  }
}

INSTANTIATE_TEST_SUITE_P(BucketsBySeed, DirectedMrParam,
                         ::testing::Combine(::testing::Values(2, 4),
                                            ::testing::Values(1ull, 5ull)));

TEST(DirectedMr, ReplicationMatchesFormula) {
  const DirectedGraph g = RandomDigraph(30, 120, 3);
  const auto metrics = DirectedBucketOrientedEnumerate(
      DirectedSampleGraph::CycleTriad(), g, 5, 1, nullptr);
  EXPECT_EQ(metrics.key_value_pairs, g.num_arcs() * 5u);
}

}  // namespace
}  // namespace smr
