// Regression tests for the reducer-key codec and the generalized-Partition
// mapper.
//
//  * Before this codec, bucket-oriented reducer ids were base-b positional
//    packings (PackDigits), which wrap a uint64_t as soon as b^p > 2^64
//    (e.g. b=64, p=11) and silently fuse distinct reducers — corrupting
//    counts. The tests below pin an explicit collision of the old packing
//    at that boundary and verify the combinatorial-rank codec that replaced
//    it is a dense bijection there.
//  * The old generalized-Partition mapper enumerated all C(b, p) group
//    subsets per edge and filtered; the rewrite extends only subsets of the
//    non-required groups (C(b-2, p-2) work). Equivalence of the emitted
//    subset lists is pinned against a brute-force reference, and a large-b
//    round pins the speedup: with b in the thousands the old mapper's
//    C(b, 3) sweep per edge does not complete in test time.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/bucket_oriented.h"
#include "graph/graph.h"
#include "graph/sample_graph.h"
#include "mapreduce/instance_sink.h"
#include "util/combinatorics.h"
#include "util/hashing.h"
#include "util/rng.h"

namespace smr {
namespace {

/// The pre-fix key function, reproduced verbatim: base-b positional packing
/// of the sorted bucket sequence.
uint64_t OldPackDigits(const std::vector<int>& digits, int base) {
  uint64_t key = 0;
  for (int d : digits) key = key * base + static_cast<uint64_t>(d);
  return key;
}

TEST(ReducerKey, OldPackingCollidesAtOverflowBoundary) {
  // b=64, p=11: 64^11 = 2^66, so the leading digit's weight 64^10 = 2^60
  // wraps for digits >= 16. The all-16s multiset and the same multiset with
  // its smallest element replaced by 0 differ by exactly 16 * 64^10 = 2^64,
  // i.e. they packed to the SAME key — two distinct reducers fused.
  const int b = 64;
  const std::vector<int> all_sixteens(11, 16);
  std::vector<int> with_zero = all_sixteens;
  with_zero[0] = 0;  // Still nondecreasing: [0, 16, 16, ..., 16].

  ASSERT_NE(all_sixteens, with_zero);
  EXPECT_EQ(OldPackDigits(all_sixteens, b), OldPackDigits(with_zero, b))
      << "the old packing no longer collides — this regression test is "
         "pinned to the wrong boundary";

  // The rank codec keeps them distinct and round-trips both.
  const uint64_t rank_a = RankNondecreasing(all_sixteens, b);
  const uint64_t rank_b = RankNondecreasing(with_zero, b);
  EXPECT_NE(rank_a, rank_b);
  EXPECT_EQ(UnrankNondecreasing(rank_a, b, 11), all_sixteens);
  EXPECT_EQ(UnrankNondecreasing(rank_b, b, 11), with_zero);
}

TEST(ReducerKey, RankNondecreasingDenseAndMonotoneAtBoundary) {
  // Random multisets at the b=64, p=11 boundary: every rank must fall in
  // [0, C(74, 11)), round-trip, and order exactly as the sequences do
  // lexicographically (the property that keeps reducer emission order
  // identical to the old packing where the old packing was correct).
  const int b = 64;
  const int p = 11;
  ASSERT_TRUE(BinomialFitsUint64(b + p - 1, p));
  const uint64_t key_space = Binomial(b + p - 1, p);

  Rng rng(2024);
  std::vector<int> prev_seq;
  uint64_t prev_rank = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int> seq(p);
    for (int& d : seq) d = static_cast<int>(rng.Below(b));
    std::sort(seq.begin(), seq.end());
    const uint64_t rank = RankNondecreasing(seq, b);
    EXPECT_LT(rank, key_space);
    EXPECT_EQ(UnrankNondecreasing(rank, b, p), seq);
    if (!prev_seq.empty()) {
      EXPECT_EQ(prev_seq < seq, prev_rank < rank);
      EXPECT_EQ(prev_seq == seq, prev_rank == rank);
    }
    prev_seq = seq;
    prev_rank = rank;
  }
}

TEST(ReducerKey, SubsetRankIsLexicographicBijection) {
  // Exhaustive check on small instances: ranking all p-subsets of [0, b)
  // in lexicographic order yields exactly 0, 1, ..., C(b, p)-1.
  for (const auto& [b, p] : std::vector<std::pair<int, int>>{
           {5, 3}, {7, 2}, {8, 4}, {9, 5}}) {
    uint64_t expected_rank = 0;
    std::vector<int> subset;
    std::function<void(int)> recurse = [&](int next) {
      if (static_cast<int>(subset.size()) == p) {
        EXPECT_EQ(RankSubset(subset, b), expected_rank);
        EXPECT_EQ(UnrankSubset(expected_rank, b, p), subset);
        ++expected_rank;
        return;
      }
      for (int v = next; v < b; ++v) {
        subset.push_back(v);
        recurse(v + 1);
        subset.pop_back();
      }
    };
    recurse(0);
    EXPECT_EQ(expected_rank, Binomial(b, p));
  }
}

TEST(ReducerKey, ClosedFormTripleRanksMatchGenericRanking) {
  // The triangle algorithms key every emission through the closed forms;
  // they must agree with the generic rankers on every triple.
  for (int base : {3, 4, 7, 12, 20}) {
    for (int a = 0; a < base; ++a) {
      for (int b = a; b < base; ++b) {
        for (int c = b; c < base; ++c) {
          EXPECT_EQ(RankNondecreasing3(a, b, c, base),
                    RankNondecreasing({a, b, c}, base))
              << a << "," << b << "," << c << " base=" << base;
          if (a < b && b < c) {
            EXPECT_EQ(RankSubset3(a, b, c, base), RankSubset({a, b, c}, base))
                << a << "," << b << "," << c << " base=" << base;
          }
        }
      }
    }
  }
}

TEST(ReducerKey, UnrankNondecreasingInvertsEnumerationOrder) {
  const int base = 5;
  const int length = 4;
  const auto seqs = NondecreasingSequences(base, length);
  for (size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(UnrankNondecreasing(i, base, length), seqs[i]);
  }
}

TEST(ReducerKey, BucketOrientedRejectsOverflowingKeySpace) {
  // C(b+p-1, p) itself above 2^64 must be a clear error, not a wrap. The
  // check fires before any per-edge work, so an empty CQ set and a one-edge
  // graph suffice.
  const Graph g(2, {{0, 1}});
  const SampleGraph pattern = SampleGraph::Path(30);
  ASSERT_FALSE(BinomialFitsUint64(500 + 30 - 1, 30));
  EXPECT_THROW(
      BucketOrientedEnumerate(pattern, {}, g, 500, 1, nullptr),
      std::invalid_argument);
}

TEST(ReducerKey, GeneralizedPartitionRejectsOverflowingKeySpace) {
  const Graph g(2, {{0, 1}});
  const SampleGraph pattern = SampleGraph::Path(35);
  ASSERT_FALSE(BinomialFitsUint64(100, 35));
  EXPECT_THROW(
      GeneralizedPartitionEnumerate(pattern, {}, g, 100, 1, nullptr),
      std::invalid_argument);
}

/// Brute-force reference for the generalized-Partition mapper: the old
/// algorithm — enumerate every p-subset of [0, b) in lexicographic order
/// and keep those containing all required groups.
std::vector<std::vector<int>> AllSubsetsContaining(
    int b, int p, const std::vector<int>& required) {
  std::vector<std::vector<int>> result;
  std::vector<int> subset;
  std::function<void(int)> recurse = [&](int next) {
    if (static_cast<int>(subset.size()) == p) {
      for (int r : required) {
        if (!std::binary_search(subset.begin(), subset.end(), r)) return;
      }
      result.push_back(subset);
      return;
    }
    for (int v = next; v < b; ++v) {
      subset.push_back(v);
      recurse(v + 1);
      subset.pop_back();
    }
  };
  recurse(0);
  return result;
}

TEST(GeneralizedPartitionMapper, MatchesBruteForceEnumeration) {
  // The rewritten mapper must emit exactly the subsets the old
  // enumerate-everything-and-filter mapper emitted, in the same
  // (lexicographic) order — so metrics and shipped instances are
  // byte-identical.
  for (int b : {5, 7, 10}) {
    for (int p : {3, 4, 5}) {
      for (const std::vector<int>& required :
           std::vector<std::vector<int>>{{0}, {2}, {b - 1}, {0, 1},
                                         {1, b - 2}, {b - 2, b - 1}}) {
        std::vector<std::vector<int>> got;
        ForEachGroupSubsetContaining(
            b, p, required,
            [&](const std::vector<int>& subset) { got.push_back(subset); });
        EXPECT_EQ(got, AllSubsetsContaining(b, p, required))
            << "b=" << b << " p=" << p;
        const int r = static_cast<int>(required.size());
        EXPECT_EQ(got.size(), Binomial(b - r, p - r));
      }
    }
  }
}

TEST(GeneralizedPartitionMapper, LargeGroupCountCompletesQuickly) {
  // b in the thousands: the old mapper's per-edge C(b, 3) sweep (~4.5e9
  // subsets per edge at b=3000) cannot finish in test time; the rewritten
  // mapper does C(b-2, 1) = b-2 emissions per edge. Communication cost is
  // checked against the closed form, so a wrong (or colliding) key path
  // cannot sneak through.
  const int b = 3000;
  const Graph g(12, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5},
                     {6, 7}, {8, 9}, {10, 11}, {2, 6}});
  const uint64_t seed = 7;
  const BucketHasher hasher(b, seed);
  uint64_t expected_pairs = 0;
  for (const Edge& e : g.edges()) {
    const int i = hasher.Bucket(e.first);
    const int j = hasher.Bucket(e.second);
    expected_pairs += (i == j) ? Binomial(b - 1, 2) : Binomial(b - 2, 1);
  }

  CountingSink sink;
  const MapReduceMetrics metrics = GeneralizedPartitionEnumerate(
      SampleGraph::Triangle(), {}, g, b, seed, &sink);
  EXPECT_EQ(metrics.key_value_pairs, expected_pairs);
  EXPECT_EQ(metrics.key_space, Binomial(b, 3));
  EXPECT_EQ(metrics.outputs, 0u);  // Empty CQ set: nothing may be emitted.
}

}  // namespace
}  // namespace smr
