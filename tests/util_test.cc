#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/combinatorics.h"
#include "util/cost_model.h"
#include "util/hashing.h"
#include "util/parse.h"
#include "util/rng.h"

namespace smr {
namespace {

TEST(Binomial, SmallValues) {
  EXPECT_EQ(Binomial(0, 0), 1u);
  EXPECT_EQ(Binomial(5, 0), 1u);
  EXPECT_EQ(Binomial(5, 5), 1u);
  EXPECT_EQ(Binomial(5, 2), 10u);
  EXPECT_EQ(Binomial(10, 3), 120u);
  EXPECT_EQ(Binomial(52, 5), 2598960u);
}

TEST(Binomial, OutOfRange) {
  EXPECT_EQ(Binomial(3, 5), 0u);
  EXPECT_EQ(Binomial(3, -1), 0u);
  EXPECT_EQ(Binomial(-1, 0), 0u);
}

TEST(Binomial, PaperReducerCounts) {
  // Section 2.3: with b buckets, triangles need C(b+2, 3) reducers;
  // 2^20 = C(12+2, 3)-ish check from Fig. 2: b=10 gives C(12,3) = 220.
  EXPECT_EQ(Binomial(10 + 2, 3), 220u);
  // Fig. 2 uses 2^20 ~ C(12,3)*...: the paper's 2^20 reducers point is
  // b=10 for Section 2.3 where C(b+2,3) counts only useful reducers.
  EXPECT_EQ(Binomial(6 + 2, 3), 56u);
}

TEST(Factorial, Values) {
  EXPECT_EQ(Factorial(0), 1u);
  EXPECT_EQ(Factorial(1), 1u);
  EXPECT_EQ(Factorial(4), 24u);
  EXPECT_EQ(Factorial(8), 40320u);
}

TEST(AllPermutations, CountAndUniqueness) {
  const auto perms = AllPermutations(4);
  EXPECT_EQ(perms.size(), 24u);
  std::set<std::vector<int>> unique(perms.begin(), perms.end());
  EXPECT_EQ(unique.size(), 24u);
  EXPECT_TRUE(std::is_sorted(perms.begin(), perms.end()));
}

TEST(Permutations, ComposeAndInverse) {
  const std::vector<int> a = {2, 0, 1};
  const std::vector<int> b = {1, 2, 0};
  const auto ab = Compose(a, b);
  EXPECT_EQ(ab, (std::vector<int>{0, 1, 2}));
  const auto inv = Inverse(a);
  EXPECT_EQ(Compose(a, inv), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(Compose(inv, a), (std::vector<int>{0, 1, 2}));
}

TEST(NondecreasingSequences, CountMatchesBinomial) {
  for (int base = 1; base <= 6; ++base) {
    for (int length = 0; length <= 4; ++length) {
      const auto seqs = NondecreasingSequences(base, length);
      EXPECT_EQ(seqs.size(), Binomial(base + length - 1, length))
          << "base=" << base << " length=" << length;
    }
  }
}

TEST(NondecreasingSequences, AreSortedAndNondecreasing) {
  const auto seqs = NondecreasingSequences(4, 3);
  EXPECT_TRUE(std::is_sorted(seqs.begin(), seqs.end()));
  for (const auto& s : seqs) {
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  }
}

TEST(RankNondecreasing, IsBijectionOntoRange) {
  const int base = 5;
  const int length = 3;
  const auto seqs = NondecreasingSequences(base, length);
  std::set<uint64_t> ranks;
  for (const auto& s : seqs) {
    const uint64_t r = RankNondecreasing(s, base);
    EXPECT_LT(r, seqs.size());
    ranks.insert(r);
  }
  EXPECT_EQ(ranks.size(), seqs.size());
  // Lexicographic: rank of seqs[i] is i.
  for (size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(RankNondecreasing(seqs[i], base), i);
  }
}

TEST(Compositions, CountsArePascal) {
  // Number of compositions of n into k positive parts = C(n-1, k-1).
  for (int n = 1; n <= 8; ++n) {
    for (int k = 1; k <= n; ++k) {
      EXPECT_EQ(Compositions(n, k).size(), Binomial(n - 1, k - 1))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Compositions, PartsArePositiveAndSum) {
  for (const auto& c : Compositions(7, 3)) {
    int sum = 0;
    for (int part : c) {
      EXPECT_GE(part, 1);
      sum += part;
    }
    EXPECT_EQ(sum, 7);
  }
}

TEST(Compositions, EmptyCases) {
  EXPECT_TRUE(Compositions(3, 4).empty());
  EXPECT_TRUE(Compositions(3, 0).empty());
}

TEST(SplitMix64, DeterministicAndDispersed) {
  EXPECT_EQ(SplitMix64(1), SplitMix64(1));
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
  std::set<uint64_t> values;
  for (uint64_t i = 0; i < 1000; ++i) values.insert(SplitMix64(i));
  EXPECT_EQ(values.size(), 1000u);
}

TEST(BucketHasher, RangeAndBalance) {
  const int buckets = 8;
  BucketHasher hasher(buckets, 42);
  std::vector<int> histogram(buckets, 0);
  const int n = 80000;
  for (int u = 0; u < n; ++u) {
    const int bucket = hasher.Bucket(u);
    ASSERT_GE(bucket, 0);
    ASSERT_LT(bucket, buckets);
    ++histogram[bucket];
  }
  for (int count : histogram) {
    EXPECT_NEAR(count, n / buckets, n / buckets * 0.1);
  }
}

TEST(BucketHasher, SeedsGiveDifferentFunctions) {
  BucketHasher h1(16, 1);
  BucketHasher h2(16, 2);
  int differences = 0;
  for (int u = 0; u < 100; ++u) {
    if (h1.Bucket(u) != h2.Bucket(u)) ++differences;
  }
  EXPECT_GT(differences, 50);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(17), 17u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(CostCounter, AccumulatesAndResets) {
  CostCounter a;
  a.edges_scanned = 3;
  a.candidates = 5;
  CostCounter b;
  b.index_probes = 7;
  b.outputs = 2;
  a += b;
  EXPECT_EQ(a.Total(), 17u);
  a.Reset();
  EXPECT_EQ(a.Total(), 0u);
}

TEST(Parse, Int64AcceptsWholeStringIntegersOnly) {
  EXPECT_EQ(ParseInt64("0"), 0);
  EXPECT_EQ(ParseInt64("-42"), -42);
  EXPECT_EQ(ParseInt64("9223372036854775807"), INT64_MAX);
  for (const char* bad :
       {"", " 1", "1 ", "+1", "1.5", "abc", "12x", "0x10",
        "9223372036854775808", "99999999999999999999"}) {
    EXPECT_FALSE(ParseInt64(bad).has_value()) << bad;
  }
}

TEST(Parse, Uint64RejectsNegatives) {
  EXPECT_EQ(ParseUint64("18446744073709551615"), UINT64_MAX);
  EXPECT_FALSE(ParseUint64("-1").has_value());
  EXPECT_FALSE(ParseUint64("18446744073709551616").has_value());
}

TEST(Parse, ByteSizeAcceptsBinarySuffixes) {
  EXPECT_EQ(ParseByteSize("0"), 0u);
  EXPECT_EQ(ParseByteSize("4096"), 4096u);
  EXPECT_EQ(ParseByteSize("64K"), uint64_t{64} << 10);
  EXPECT_EQ(ParseByteSize("64k"), uint64_t{64} << 10);
  EXPECT_EQ(ParseByteSize("512M"), uint64_t{512} << 20);
  EXPECT_EQ(ParseByteSize("2G"), uint64_t{2} << 30);
  EXPECT_EQ(ParseByteSize("3t"), uint64_t{3} << 40);
  // The largest value each suffix can scale without wrapping.
  EXPECT_EQ(ParseByteSize("18014398509481983K"),
            uint64_t{18014398509481983} << 10);
}

TEST(Parse, ByteSizeRejectsGarbageAndOverflow) {
  for (const char* bad :
       {"", "K", "64KB", "64 K", "1.5M", "-1K", "+1K", "0x10", "64Q",
        // 2^54 kibibytes = 2^64 bytes: one past the top.
        "18014398509481984K", "17179869184G", "16777216T",
        "99999999999999999999"}) {
    EXPECT_FALSE(ParseByteSize(bad).has_value()) << bad;
  }
}

TEST(Parse, DoubleIsStrictAndFinite) {
  EXPECT_DOUBLE_EQ(*ParseDouble("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("256"), 256.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e3"), 1000.0);
  for (const char* bad : {"", "nan", "inf", "-inf", "1.5x", " 1.5", "1e"}) {
    EXPECT_FALSE(ParseDouble(bad).has_value()) << bad;
  }
  // Overflowing literals are rejected rather than clamped.
  EXPECT_FALSE(ParseDouble("1e99999").has_value());
}

}  // namespace
}  // namespace smr
