#ifndef SMR_TESTS_TEST_UTIL_H_
#define SMR_TESTS_TEST_UTIL_H_

#include <vector>

#include "graph/sample_graph.h"
#include "mapreduce/instance_sink.h"
#include "serial/matcher.h"

namespace smr {

/// Canonical sorted multiset of instance keys from a collecting sink.
inline std::vector<InstanceKey> KeysOf(const CollectingSink& sink,
                                       const SampleGraph& pattern) {
  return sink.Keys(pattern.edges());
}

/// Ground-truth instance keys via the reference serial matcher.
inline std::vector<InstanceKey> GroundTruthKeys(const SampleGraph& pattern,
                                                const Graph& graph) {
  CollectingSink sink;
  EnumerateInstances(pattern, graph, &sink, nullptr);
  return KeysOf(sink, pattern);
}

}  // namespace smr

#endif  // SMR_TESTS_TEST_UTIL_H_
