// Strategy planning table: for a catalog of patterns and reducer budgets,
// the closed-form predictions of the plan advisor (bucket-oriented
// C(b+p-3, p-2) vs the optimizer's variable-oriented cost) and the
// recommendation. The bucket-oriented scheme usually wins at equal reducer
// budgets — the Section 4.5 advantage of shipping each edge in a single
// orientation — while variable-oriented processing closes the gap when the
// optimizer can exploit dominated or low-degree variables.

#include <cstdio>

#include "core/plan_advisor.h"
#include "graph/sample_graph.h"

namespace smr {
namespace {

void Run() {
  std::printf("plan advisor: predicted cost/edge by strategy\n\n");
  std::printf("%-26s %10s %4s %14s %14s %12s\n", "pattern", "k", "b",
              "bucket", "variable", "recommended");
  const SampleGraph patterns[] = {
      SampleGraph::Triangle(), SampleGraph::Square(), SampleGraph::Lollipop(),
      SampleGraph::Cycle(5),   SampleGraph::Clique(4), SampleGraph::Star(4)};
  for (const auto& pattern : patterns) {
    for (double k : {100.0, 1000.0, 10000.0}) {
      const StrategyPlan plan = PlanEnumeration(pattern, k);
      std::printf("%-26s %10.0f %4d %14.1f %14.1f %12s\n",
                  pattern.ToString().c_str(), k, plan.buckets,
                  plan.bucket_cost_per_edge, plan.variable_cost_per_edge,
                  plan.recommended ==
                          StrategyPlan::Strategy::kBucketOriented
                      ? "bucket"
                      : "variable");
    }
  }
}

}  // namespace
}  // namespace smr

int main() {
  smr::Run();
  return 0;
}
