// Wall-clock comparison of the serial engine against the multi-threaded
// engine on reducer-heavy workloads (bucket-oriented square and triangle
// enumeration, multiway-join triangles). Results are identical by
// construction — the engine's determinism guarantee — so only wall-clock
// changes. On a single-core host the speedup is ~1x; on an N-core host the
// reduce phase dominates and the speedup approaches min(N, #reducers).

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/subgraph_enumerator.h"
#include "core/triangle_algorithms.h"
#include "graph/generators.h"
#include "mapreduce/execution_policy.h"

namespace smr {
namespace {

template <typename Fn>
double TimeMs(const Fn& fn, int repetitions) {
  // One warm-up, then best-of-N to damp scheduler noise.
  fn();
  double best = 1e300;
  for (int r = 0; r < repetitions; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return best;
}

void Compare(const char* name, uint64_t serial_outputs,
             uint64_t parallel_outputs, double serial_ms, double parallel_ms) {
  std::printf("%-28s serial %8.2f ms | parallel %8.2f ms | speedup %5.2fx%s\n",
              name, serial_ms, parallel_ms, serial_ms / parallel_ms,
              serial_outputs == parallel_outputs ? "" : "  MISMATCH — BUG");
}

void Run() {
  const ExecutionPolicy parallel = ExecutionPolicy::MaxParallel();
  std::printf("parallel policy: %u thread(s)\n\n", parallel.num_threads);

  {
    const Graph g = ErdosRenyi(4000, 40000, 11);
    const SubgraphEnumerator square(SampleGraph::Square());
    uint64_t serial_out = 0, parallel_out = 0;
    const double serial_ms = TimeMs(
        [&] { serial_out = square.RunBucketOriented(g, 4, 1, nullptr).outputs; },
        3);
    const double parallel_ms = TimeMs(
        [&] {
          parallel_out =
              square.RunBucketOriented(g, 4, 1, nullptr, parallel).outputs;
        },
        3);
    Compare("bucket-oriented square", serial_out, parallel_out, serial_ms,
            parallel_ms);
  }

  {
    const Graph g = ErdosRenyi(3000, 36000, 7);
    const SubgraphEnumerator triangle(SampleGraph::Triangle());
    uint64_t serial_out = 0, parallel_out = 0;
    const double serial_ms = TimeMs(
        [&] {
          serial_out = triangle.RunBucketOriented(g, 10, 3, nullptr).outputs;
        },
        3);
    const double parallel_ms = TimeMs(
        [&] {
          parallel_out =
              triangle.RunBucketOriented(g, 10, 3, nullptr, parallel).outputs;
        },
        3);
    Compare("bucket-oriented triangle", serial_out, parallel_out, serial_ms,
            parallel_ms);
  }

  {
    const Graph g = ErdosRenyi(3000, 36000, 7);
    uint64_t serial_out = 0, parallel_out = 0;
    const double serial_ms = TimeMs(
        [&] { serial_out = MultiwayJoinTriangles(g, 6, 3, nullptr).outputs; },
        3);
    const double parallel_ms = TimeMs(
        [&] {
          parallel_out =
              MultiwayJoinTriangles(g, 6, 3, nullptr, parallel).outputs;
        },
        3);
    Compare("multiway-join triangles", serial_out, parallel_out, serial_ms,
            parallel_ms);
  }
}

}  // namespace
}  // namespace smr

int main() {
  smr::Run();
  return 0;
}
