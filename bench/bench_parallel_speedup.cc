// Wall-clock comparison of the serial engine against the multi-threaded
// engine's two shuffle implementations on reducer-heavy workloads
// (bucket-oriented square and triangle enumeration, multiway-join
// triangles). Results are identical by construction — the engine's
// determinism guarantee — so only wall-clock changes. On a single-core host
// every speedup is ~1x; on an N-core host the sort shuffle is capped by its
// serial O(C log C) global sort, while the partitioned shuffle scatters
// during the map and sorts P key-range partitions independently, so its
// speedup approaches min(N, #partitions).

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/subgraph_enumerator.h"
#include "core/triangle_algorithms.h"
#include "core/triangle_census.h"
#include "graph/generators.h"
#include "graph/node_order.h"
#include "mapreduce/execution_policy.h"

namespace smr {
namespace {

template <typename Fn>
double TimeMs(const Fn& fn, int repetitions) {
  // One warm-up, then best-of-N to damp scheduler noise.
  fn();
  double best = 1e300;
  for (int r = 0; r < repetitions; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return best;
}

/// Times `run(policy)` under the serial engine and both parallel shuffle
/// modes, and checks the three output counts agree.
template <typename Run>
void Compare(const char* name, const ExecutionPolicy& parallel,
             const Run& run) {
  uint64_t serial_out = 0, sort_out = 0, partitioned_out = 0;
  const double serial_ms =
      TimeMs([&] { serial_out = run(ExecutionPolicy::Serial()); }, 3);
  const double sort_ms = TimeMs(
      [&] { sort_out = run(parallel.WithShuffle(ShuffleMode::kSort)); }, 3);
  const double partitioned_ms = TimeMs(
      [&] {
        partitioned_out = run(parallel.WithShuffle(ShuffleMode::kPartitioned));
      },
      3);
  const bool mismatch =
      serial_out != sort_out || serial_out != partitioned_out;
  std::printf(
      "%-26s serial %8.2f ms | sort-shuffle %8.2f ms (%4.2fx) | "
      "partitioned %8.2f ms (%4.2fx, %4.2fx vs sort)%s\n",
      name, serial_ms, sort_ms, serial_ms / sort_ms, partitioned_ms,
      serial_ms / partitioned_ms, sort_ms / partitioned_ms,
      mismatch ? "  MISMATCH — BUG" : "");
}

/// The combine-on/off dimension, on the counting workload where the
/// map-side combiner bites: the triangle census's counting round ships
/// 3 * #triangles raw pairs uncombined vs at most (workers x touched
/// nodes) partial counts combined. Results are identical by construction.
void CompareCombine(const char* name, const Graph& g,
                    const ExecutionPolicy& parallel) {
  const NodeOrder order = NodeOrder::ByDegree(g);
  TriangleCensusResult off, on;
  const double off_ms = TimeMs(
      [&] { off = TriangleCensus(g, order, parallel.WithCombine(false)); }, 3);
  const double on_ms = TimeMs(
      [&] { on = TriangleCensus(g, order, parallel.WithCombine(true)); }, 3);
  const bool mismatch = off.total_triangles != on.total_triangles ||
                        off.per_node != on.per_node;
  // The savings live in the counting round (rounds 1-2 declare no
  // combiner), so report that round's shipped pairs alongside the job
  // totals.
  const uint64_t count_off = off.job.rounds[2].metrics.shuffle.pairs_shipped;
  const uint64_t count_on = on.job.rounds[2].metrics.shuffle.pairs_shipped;
  std::printf(
      "%-26s combine-off %8.2f ms | combine-on %8.2f ms | counting round "
      "ships %llu -> %llu pairs (%.1fx fewer; job total %llu -> %llu)%s\n",
      name, off_ms, on_ms, static_cast<unsigned long long>(count_off),
      static_cast<unsigned long long>(count_on),
      static_cast<double>(count_off) / static_cast<double>(count_on),
      static_cast<unsigned long long>(off.job.TotalPairsShipped()),
      static_cast<unsigned long long>(on.job.TotalPairsShipped()),
      mismatch ? "  MISMATCH — BUG" : "");
}

void Run() {
  ExecutionPolicy parallel = ExecutionPolicy::MaxParallel();
  if (parallel.num_threads < 2) {
    // A 1-thread policy would take the serial engine path and measure
    // nothing; force 2 workers so the parallel shuffles are what runs
    // (on a single core the speedups then mostly reflect overhead).
    parallel = ExecutionPolicy::WithThreads(2);
    std::printf("single hardware context: forcing 2 worker threads\n");
  }
  std::printf("parallel policy: %u thread(s), %u partitions\n\n",
              parallel.num_threads, parallel.EffectivePartitions());

  {
    const Graph g = ErdosRenyi(4000, 40000, 11);
    const SubgraphEnumerator square(SampleGraph::Square());
    Compare("bucket-oriented square", parallel,
            [&](const ExecutionPolicy& policy) {
              return square.RunBucketOriented(g, 4, 1, nullptr, policy).outputs;
            });
  }

  {
    const Graph g = ErdosRenyi(3000, 36000, 7);
    const SubgraphEnumerator triangle(SampleGraph::Triangle());
    Compare("bucket-oriented triangle", parallel,
            [&](const ExecutionPolicy& policy) {
              return triangle.RunBucketOriented(g, 10, 3, nullptr, policy)
                  .outputs;
            });
  }

  {
    const Graph g = ErdosRenyi(3000, 36000, 7);
    Compare("multiway-join triangles", parallel,
            [&](const ExecutionPolicy& policy) {
              return MultiwayJoinTriangles(g, 6, 3, nullptr, policy).outputs;
            });
  }

  {
    const Graph g = ErdosRenyi(2000, 40000, 13);
    CompareCombine("triangle census", g, parallel);
  }
}

}  // namespace
}  // namespace smr

int main() {
  smr::Run();
  return 0;
}
