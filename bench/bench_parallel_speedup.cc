// Wall-clock comparison of the serial engine against the multi-threaded
// engine's two shuffle implementations on reducer-heavy workloads
// (bucket-oriented square and triangle enumeration, multiway-join
// triangles). Results are identical by construction — the engine's
// determinism guarantee — so only wall-clock changes. On a single-core host
// every speedup is ~1x; on an N-core host the sort shuffle is capped by its
// serial O(C log C) global sort, while the partitioned shuffle scatters
// during the map and sorts P key-range partitions independently, so its
// speedup approaches min(N, #partitions).

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/subgraph_enumerator.h"
#include "core/triangle_algorithms.h"
#include "graph/generators.h"
#include "mapreduce/execution_policy.h"

namespace smr {
namespace {

template <typename Fn>
double TimeMs(const Fn& fn, int repetitions) {
  // One warm-up, then best-of-N to damp scheduler noise.
  fn();
  double best = 1e300;
  for (int r = 0; r < repetitions; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return best;
}

/// Times `run(policy)` under the serial engine and both parallel shuffle
/// modes, and checks the three output counts agree.
template <typename Run>
void Compare(const char* name, const ExecutionPolicy& parallel,
             const Run& run) {
  uint64_t serial_out = 0, sort_out = 0, partitioned_out = 0;
  const double serial_ms =
      TimeMs([&] { serial_out = run(ExecutionPolicy::Serial()); }, 3);
  const double sort_ms = TimeMs(
      [&] { sort_out = run(parallel.WithShuffle(ShuffleMode::kSort)); }, 3);
  const double partitioned_ms = TimeMs(
      [&] {
        partitioned_out = run(parallel.WithShuffle(ShuffleMode::kPartitioned));
      },
      3);
  const bool mismatch =
      serial_out != sort_out || serial_out != partitioned_out;
  std::printf(
      "%-26s serial %8.2f ms | sort-shuffle %8.2f ms (%4.2fx) | "
      "partitioned %8.2f ms (%4.2fx, %4.2fx vs sort)%s\n",
      name, serial_ms, sort_ms, serial_ms / sort_ms, partitioned_ms,
      serial_ms / partitioned_ms, sort_ms / partitioned_ms,
      mismatch ? "  MISMATCH — BUG" : "");
}

void Run() {
  ExecutionPolicy parallel = ExecutionPolicy::MaxParallel();
  if (parallel.num_threads < 2) {
    // A 1-thread policy would take the serial engine path and measure
    // nothing; force 2 workers so the parallel shuffles are what runs
    // (on a single core the speedups then mostly reflect overhead).
    parallel = ExecutionPolicy::WithThreads(2);
    std::printf("single hardware context: forcing 2 worker threads\n");
  }
  std::printf("parallel policy: %u thread(s), %u partitions\n\n",
              parallel.num_threads, parallel.EffectivePartitions());

  {
    const Graph g = ErdosRenyi(4000, 40000, 11);
    const SubgraphEnumerator square(SampleGraph::Square());
    Compare("bucket-oriented square", parallel,
            [&](const ExecutionPolicy& policy) {
              return square.RunBucketOriented(g, 4, 1, nullptr, policy).outputs;
            });
  }

  {
    const Graph g = ErdosRenyi(3000, 36000, 7);
    const SubgraphEnumerator triangle(SampleGraph::Triangle());
    Compare("bucket-oriented triangle", parallel,
            [&](const ExecutionPolicy& policy) {
              return triangle.RunBucketOriented(g, 10, 3, nullptr, policy)
                  .outputs;
            });
  }

  {
    const Graph g = ErdosRenyi(3000, 36000, 7);
    Compare("multiway-join triangles", parallel,
            [&](const ExecutionPolicy& policy) {
              return MultiwayJoinTriangles(g, 6, 3, nullptr, policy).outputs;
            });
  }
}

}  // namespace
}  // namespace smr

int main() {
  smr::Run();
  return 0;
}
