// Reproduces Section 5 (Examples 5.1-5.5): the run-sequence CQ construction
// for cycles. Prints, for each cycle length p: the paper's conditional
// upper bound (2^p - 2)/(2p), the exact class count (Burnside), the number
// of CQs constructed, and the run sequences with their self-symmetries.
// Also cross-checks the exactly-once property against the serial matcher
// and compares against the general Section-3 method.
//
// Note on p = 6: the paper's Example 5.4 concludes 7 CQs, but its own lists
// are inconsistent (Example 5.4 keeps {1122,1212,1221}+{1113,1131}, Example
// 5.5 lists 7 including 1113 but omitting 1221); both Burnside's lemma and
// the dropping-any-CQ-loses-cycles test give 8. See EXPERIMENTS.md.

#include <cstdio>

#include "cq/cq_evaluator.h"
#include "cq/cq_generation.h"
#include "cycles/cycle_cqs.h"
#include "graph/generators.h"
#include "serial/matcher.h"

namespace smr {
namespace {

void Run() {
  std::printf("Section 5: run-sequence CQs for cycles C_p\n\n");
  std::printf("%3s %18s %12s %12s %14s\n", "p", "(2^p-2)/(2p)", "exact",
              "constructed", "Sec.3 method");
  for (int p = 3; p <= 9; ++p) {
    std::printf("%3d %18.2f %12llu %12zu %14zu\n", p,
                CycleCqConditionalUpperBound(p),
                static_cast<unsigned long long>(CycleCqExactCount(p)),
                CycleCqs(p).size(), CqsForSample(SampleGraph::Cycle(p)).size());
  }

  for (int p : {5, 6, 7}) {
    std::printf("\nrun sequences for C%d:\n", p);
    for (const auto& entry : CycleCqs(p)) {
      std::string runs;
      for (int r : entry.runs) runs += std::to_string(r);
      std::printf("  runs=%-8s orient=%-10s palindrome=%d periodicity=%d "
                  "orders=%zu\n",
                  runs.c_str(), entry.orientation.c_str(),
                  entry.palindrome ? 1 : 0, entry.periodicity,
                  entry.cq.allowed_orders().size());
    }
  }

  // Exactly-once verification on a random graph.
  std::printf("\nexactly-once check (counts vs serial matcher):\n");
  const Graph g = ErdosRenyi(24, 80, 5);
  for (int p = 3; p <= 8; ++p) {
    const CqEvaluator evaluator(g, NodeOrder::Identity(g.num_nodes()));
    uint64_t found = 0;
    for (const auto& entry : CycleCqs(p)) {
      found += evaluator.Evaluate(entry.cq, nullptr, nullptr);
    }
    const uint64_t expected = CountInstances(SampleGraph::Cycle(p), g);
    std::printf("  C%d: cq-union=%llu serial=%llu %s\n", p,
                static_cast<unsigned long long>(found),
                static_cast<unsigned long long>(expected),
                found == expected ? "OK" : "MISMATCH");
  }
}

}  // namespace
}  // namespace smr

int main() {
  smr::Run();
  return 0;
}
