// Reproduces the share-optimization results of Section 4:
//  * Example 4.1 — single-CQ optimization for the first lollipop CQ
//    (dominated W, z = y, x = y^2 + y; y=5 point: 750 reducers, 65/edge),
//  * Theorem 4.1 — regular sample graphs get equal shares k^{1/p},
//  * Example 4.2 — square CQ-set optimum: x = z, y = 2w, cost 4 sqrt(2k),
//  * Example 4.3 — C6 at k = 500000 (paper's share point (5,10,...)); note
//    the optimal cost/edge is 60000, not the paper's stated 50000,
//  * Examples 4.4/4.5 — Eq.(2)/Eq.(3) closed forms vs the optimizer,
//  * Theorem 4.4 — combined evaluation beats split evaluation.

#include <cmath>
#include <cstdio>

#include "cq/cq_generation.h"
#include "shares/cost_expression.h"
#include "shares/share_optimizer.h"

namespace smr {
namespace {

void PrintSolution(const char* label, const ShareSolution& solution) {
  std::printf("  %-26s cost/edge=%10.3f reducers=%10.1f residual=%.2e\n",
              label, solution.cost_per_edge, solution.reducers,
              solution.residual);
  std::printf("    shares:");
  for (double s : solution.shares) std::printf(" %.3f", s);
  std::printf("\n");
}

void Run() {
  std::printf("Example 4.1: lollipop CQ E(W,X)&E(X,Y)&E(X,Z)&E(Y,Z)\n");
  const ConjunctiveQuery lollipop_cq(4, {{0, 1}, {1, 2}, {1, 3}, {2, 3}},
                                     {{0, 1, 2, 3}});
  const auto single = CostExpression::ForSingleCq(lollipop_cq);
  const auto s41 = OptimizeShares(single, 750);
  PrintSolution("k=750 (paper: 1,30,5,5)", s41);
  std::printf("    paper's point (1,30,5,5): cost/edge = %.1f (65 expected)\n",
              single.CostPerEdge(std::vector<double>{1, 30, 5, 5}));

  std::printf("\nTheorem 4.1: regular patterns -> equal shares k^{1/p}\n");
  for (const auto& pattern :
       {SampleGraph::Triangle(), SampleGraph::Cycle(5),
        SampleGraph::Clique(4)}) {
    const auto cq = GenerateOrderCqs(pattern).front();
    const auto sol = OptimizeShares(CostExpression::ForSingleCq(cq), 4096);
    std::printf("  %-28s k^(1/p)=%8.3f shares:", pattern.ToString().c_str(),
                RegularShare(pattern.num_vars(), 4096));
    for (double s : sol.shares) std::printf(" %.3f", s);
    std::printf("\n");
  }

  std::printf("\nExample 4.2: square CQ set (2 bidirectional edges)\n");
  const auto square_expr =
      CostExpression::ForCqSet(CqsForSample(SampleGraph::Square()));
  std::printf("  expression: %s\n", square_expr.ToString().c_str());
  const double k42 = 1 << 14;
  const auto s42 = OptimizeShares(square_expr, k42);
  PrintSolution("k=2^14", s42);
  std::printf("    paper 4*sqrt(2k) = %.3f\n", 4 * std::sqrt(2 * k42));

  std::printf("\nExample 4.3: C6, k=500000\n");
  const auto c6_expr =
      CostExpression::ForCqSet(CqsForSample(SampleGraph::Cycle(6)));
  const auto s43 = OptimizeShares(c6_expr, 500000);
  PrintSolution("k=500000", s43);
  std::printf(
      "    paper's share point (5,10,10,10,10,10) also achieves the optimum;"
      "\n    optimal cost/edge = 60000 => total 6e13 at m=1e9 (the paper's"
      "\n    stated 5e13 undercounts the unidirectional terms; see"
      " EXPERIMENTS.md)\n");

  std::printf("\nExamples 4.4/4.5: Eq.(2)/Eq.(3) scenarios vs optimizer\n");
  {
    // Eq.(2) scenario on C6: S1={0,1}, S2={2,5}, S3={3,4}.
    const CostExpression eq2(6, {{2.0, 0, 1},
                                 {2.0, 1, 2},
                                 {2.0, 0, 5},
                                 {1.0, 2, 3},
                                 {1.0, 3, 4},
                                 {1.0, 4, 5}});
    const auto sol = OptimizeShares(eq2, 1e6);
    std::printf("  Eq.(2): optimizer %.2f vs closed form %.2f\n",
                sol.cost_per_edge, Eq2Replication(6, 2, 2, 1e6));
  }
  {
    // Eq.(3) scenario on C4: S2={0,2} independent covering all edges.
    const CostExpression eq3(
        4, {{2.0, 0, 1}, {2.0, 1, 2}, {1.0, 2, 3}, {1.0, 0, 3}});
    const auto sol = OptimizeShares(eq3, 1e6);
    std::printf("  Eq.(3): optimizer %.2f vs closed form %.2f\n",
                sol.cost_per_edge, Eq3Replication(4, 2, 1, 1e6));
  }

  std::printf("\nTheorem 4.4: combined vs split evaluation (same k each)\n");
  for (const auto& pattern :
       {SampleGraph::Square(), SampleGraph::Lollipop(),
        SampleGraph::Cycle(5)}) {
    const auto cqs = CqsForSample(pattern);
    const double k = 10000;
    const double combined =
        OptimizeShares(CostExpression::ForCqSet(cqs), k).cost_per_edge;
    double split = 0;
    for (const auto& cq : cqs) {
      split += OptimizeShares(CostExpression::ForSingleCq(cq), k).cost_per_edge;
    }
    std::printf("  %-28s combined=%10.2f split(%zu CQs)=%10.2f ratio=%.2f\n",
                pattern.ToString().c_str(), combined, cqs.size(), split,
                split / combined);
  }
}

}  // namespace
}  // namespace smr

int main() {
  smr::Run();
  return 0;
}
