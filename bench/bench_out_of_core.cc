// Out-of-core shuffle demonstration: enumerate triangles on a graph whose
// shuffle volume is several times the declared budget
// (ExecutionPolicy::shuffle_budget_bytes), and report peak RSS against
// budget + graph size. The input round-trips through the binary edge-list
// format (graph/io) on the way in, so the loader is exercised at bench
// scale too.
//
// Run order matters: getrusage's ru_maxrss is a process-wide high-water
// mark, so the budgeted run goes FIRST; the optional --verify pass (the
// unbounded engine, for the byte-equality differential) runs after and
// may only raise the mark. CI's out-of-core smoke job therefore runs
// WITHOUT --verify under a hard address-space ulimit smaller than the
// unbounded shuffle volume — completing at all under that limit is the
// proof that the budget is honored.
//
//   bench_out_of_core [--nodes N] [--edges M] [--bucket B] [--budget BYTES]
//                     [--threads T] [--seed S] [--verify]

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/subgraph_enumerator.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "mapreduce/execution_policy.h"
#include "util/parse.h"

namespace smr {
namespace {

uint64_t PeakRssBytes() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  // ru_maxrss is KiB on Linux.
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

double Mb(uint64_t bytes) { return static_cast<double>(bytes) / (1 << 20); }

[[noreturn]] void Usage(const std::string& message) {
  std::fprintf(stderr, "bench_out_of_core: %s\n", message.c_str());
  std::exit(2);
}

uint64_t RequireBytes(const std::string& text, const char* flag) {
  const auto value = ParseByteSize(text);
  if (!value) Usage(std::string(flag) + " needs a byte size, got " + text);
  return *value;
}

uint64_t RequireCount(const std::string& text, const char* flag) {
  const auto value = ParseUint64(text);
  if (!value) Usage(std::string(flag) + " needs an integer, got " + text);
  return *value;
}

int Run(int argc, char** argv) {
  uint64_t nodes = 20000;
  uint64_t edges = 300000;
  int bucket = 8;
  uint64_t budget = 4 << 20;
  unsigned threads = 1;
  uint64_t seed = 1;
  bool verify = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage("missing value after " + arg);
      return argv[++i];
    };
    if (arg == "--nodes") {
      nodes = RequireCount(next(), "--nodes");
    } else if (arg == "--edges") {
      edges = RequireCount(next(), "--edges");
    } else if (arg == "--bucket") {
      bucket = static_cast<int>(RequireCount(next(), "--bucket"));
    } else if (arg == "--budget") {
      budget = RequireBytes(next(), "--budget");
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(RequireCount(next(), "--threads"));
    } else if (arg == "--seed") {
      seed = RequireCount(next(), "--seed");
    } else if (arg == "--verify") {
      verify = true;
    } else {
      Usage("unknown flag " + arg);
    }
  }
  if (budget == 0) Usage("--budget must be > 0 (the point of this bench)");

  // Generate, round-trip through the binary format, and enumerate from the
  // loaded copy.
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string path =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/smr-ooc-" +
      std::to_string(static_cast<unsigned long long>(seed)) + ".smrb";
  {
    const Graph generated =
        ErdosRenyi(static_cast<NodeId>(nodes), static_cast<size_t>(edges),
                   seed);
    WriteBinaryEdgeListFile(generated, path);
  }
  const Graph graph = LoadGraphFile(path);
  const uint64_t graph_bytes = graph.num_edges() * sizeof(Edge);
  std::printf("graph:   n=%u m=%zu (%.1f MB as edges, binary file %s)\n",
              graph.num_nodes(), graph.num_edges(), Mb(graph_bytes),
              path.c_str());
  const uint64_t baseline_rss = PeakRssBytes();
  std::printf("rss:     %.1f MB after load\n", Mb(baseline_rss));

  const SubgraphEnumerator triangle(SampleGraph::Triangle());
  const ExecutionPolicy budgeted =
      ExecutionPolicy::WithThreads(threads).WithBudget(budget);

  // Budgeted run first — see the header comment on ru_maxrss.
  CountingSink counting;
  const MapReduceMetrics metrics =
      triangle.RunBucketOriented(graph, bucket, seed, &counting, budgeted);
  const uint64_t peak_rss = PeakRssBytes();
  const double volume_ratio =
      static_cast<double>(metrics.shuffle.shuffle_bytes) /
      static_cast<double>(budget);
  std::printf(
      "shuffle: %.1f MB over a %.1f MB budget (%.1fx) — spilled %llu pages"
      " / %.1f MB across %llu file(s)\n",
      Mb(metrics.shuffle.shuffle_bytes), Mb(budget), volume_ratio,
      static_cast<unsigned long long>(metrics.shuffle.pages_spilled),
      Mb(metrics.shuffle.bytes_spilled),
      static_cast<unsigned long long>(metrics.shuffle.spill_files));
  std::printf("result:  %llu triangles, %llu reducers used\n",
              static_cast<unsigned long long>(counting.count()),
              static_cast<unsigned long long>(metrics.distinct_keys));
  // The acceptance framing: the run held a multi-x-of-budget shuffle while
  // its peak stayed near baseline + budget (reducer-side state and
  // allocator slack account for the rest).
  const double rss_ratio = static_cast<double>(peak_rss) /
                           static_cast<double>(baseline_rss + budget);
  std::printf("rss:     %.1f MB peak vs %.1f MB (graph baseline + budget)"
              " = %.2fx\n",
              Mb(peak_rss), Mb(baseline_rss + budget), rss_ratio);
  if (volume_ratio < 4.0) {
    std::printf("note:    shuffle volume under 4x budget — grow --edges or"
                " shrink --budget for a meaningful demonstration\n");
  }

  int failures = 0;
  if (verify) {
    CountingSink unbounded_count;
    const MapReduceMetrics unbounded = triangle.RunBucketOriented(
        graph, bucket, seed, &unbounded_count,
        ExecutionPolicy::WithThreads(threads));
    const bool equal = metrics == unbounded &&
                       counting.count() == unbounded_count.count();
    std::printf("verify:  unbounded run %s (%llu triangles)\n",
                equal ? "IDENTICAL" : "MISMATCH — BUG",
                static_cast<unsigned long long>(unbounded_count.count()));
    if (!equal) ++failures;
  }
  std::remove(path.c_str());
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace smr

int main(int argc, char** argv) { return smr::Run(argc, argv); }
