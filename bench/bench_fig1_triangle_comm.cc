// Reproduces Fig. 1 of the paper: asymptotic communication cost of the
// three one-round triangle algorithms, as a function of the reducer budget
// k. For each k we derive each algorithm's bucket count (Partition and
// Section 2.3: b = cbrt(6k); Section 2.2: b = cbrt(k)), run the algorithm on
// the simulator, and print measured communication per edge next to the
// paper's closed forms (3m cbrt(6k)/2, 3m cbrt(k), m cbrt(6k)).
//
// Expected shape: ordered-bucket (Section 2.3) cheapest, Partition 1.5x
// more, multiway join 3/6^{1/3} = 1.65x more.

#include <cmath>
#include <cstdio>
#include <string>

#include "core/strategy.h"
#include "graph/generators.h"
#include "graph/sample_graph.h"
#include "shares/replication_formulas.h"

namespace smr {
namespace {

/// Measured replication of a registry strategy at bucket count b.
MapReduceMetrics RunSpec(const std::string& name, int b, const SampleGraph& p,
                         const Graph& g) {
  return StrategyRegistry::Global()
      .Run(EnumerationQuery::Undirected(p, g).WithStrategy(
          name + ":" + std::to_string(b)))
      .metrics;
}

void Run() {
  const SampleGraph pattern = SampleGraph::Triangle();
  const Graph g = ErdosRenyi(2000, 20000, 42);
  std::printf(
      "Fig.1: communication cost per edge of the three triangle algorithms\n"
      "data graph: n=%u m=%zu (Erdos-Renyi)\n\n",
      g.num_nodes(), g.num_edges());
  std::printf("%10s | %22s | %22s | %22s\n", "k target",
              "Partition meas/pred", "multiway meas/pred",
              "ordered meas/pred");
  for (const double k : {64.0, 512.0, 4096.0, 32768.0}) {
    const TriangleAsymptotics predicted = Fig1Asymptotics(k);
    const int b_partition =
        std::max(3, static_cast<int>(std::lround(predicted.partition_buckets)));
    const int b_multiway =
        std::max(1, static_cast<int>(std::lround(predicted.multiway_buckets)));
    const int b_ordered =
        std::max(1, static_cast<int>(std::lround(predicted.ordered_buckets)));
    const auto partition = RunSpec("partition", b_partition, pattern, g);
    const auto multiway = RunSpec("multiway", b_multiway, pattern, g);
    const auto ordered = RunSpec("orderedbucket", b_ordered, pattern, g);
    std::printf("%10.0f | %10.2f / %8.2f | %10.2f / %8.2f | %10.2f / %8.2f\n",
                k, partition.ReplicationRate(),
                PartitionTriangleReplication(b_partition),
                multiway.ReplicationRate(),
                MultiwayTriangleReplication(b_multiway),
                ordered.ReplicationRate(),
                OrderedBucketTriangleReplication(b_ordered));
  }
  std::printf(
      "\nasymptotic ratios vs ordered (paper: Partition 1.50, multiway "
      "1.65):\n");
  const TriangleAsymptotics a = Fig1Asymptotics(1e6);
  std::printf("  Partition/ordered = %.3f, multiway/ordered = %.3f\n",
              a.partition_cost / a.ordered_cost,
              a.multiway_cost / a.ordered_cost);
}

}  // namespace
}  // namespace smr

int main() {
  smr::Run();
  return 0;
}
