// Reproduces Theorem 4.2 and Section 4.5:
//  * useful reducers under hash-ordering = C(b+p-1, p), measured as the
//    number of distinct keys that actually receive edges on a dense graph;
//  * per-edge replication of bucket-oriented processing = C(b+p-3, p-2),
//    measured exactly;
//  * the generalized-Partition / bucket-oriented replication ratio, which
//    approaches 1 + 1/(p-1) for large b.

#include <cstdio>
#include <vector>

#include "core/bucket_oriented.h"
#include "cq/cq_generation.h"
#include "graph/generators.h"
#include "shares/replication_formulas.h"

namespace smr {
namespace {

void Run() {
  std::printf("Theorem 4.2: useful reducers = C(b+p-1, p)\n\n");
  std::printf("%3s %3s %14s %14s %16s\n", "p", "b", "C(b+p-1,p)",
              "keys used", "repl meas=pred");
  const Graph dense = ErdosRenyi(400, 8000, 3);
  // C5 evaluation on dense reducer subgraphs is the expensive case; use
  // smaller bucket counts there so the whole bench stays fast.
  const Graph sparse = ErdosRenyi(400, 2400, 3);
  struct Case {
    int p;
    SampleGraph pattern;
    const Graph* graph;
    std::vector<int> buckets;
  };
  const Case cases[] = {{3, SampleGraph::Triangle(), &dense, {2, 4, 6}},
                        {4, SampleGraph::Square(), &dense, {2, 4, 6}},
                        {5, SampleGraph::Cycle(5), &sparse, {2, 3, 4}}};
  for (const auto& c : cases) {
    const auto cqs = CqsForSample(c.pattern);
    for (int b : c.buckets) {
      const auto metrics =
          BucketOrientedEnumerate(c.pattern, cqs, *c.graph, b, 1, nullptr);
      std::printf("%3d %3d %14llu %14llu %8.1f = %llu\n", c.p, b,
                  static_cast<unsigned long long>(
                      BucketOrientedReducerCount(b, c.p)),
                  static_cast<unsigned long long>(metrics.distinct_keys),
                  metrics.ReplicationRate(),
                  static_cast<unsigned long long>(
                      BucketOrientedEdgeReplication(b, c.p)));
    }
  }

  std::printf(
      "\nSection 4.5: generalized Partition vs bucket-oriented replication\n"
      "(ratio -> 1 + 1/(p-1) as b grows)\n\n");
  std::printf("%3s %6s %16s %16s %8s %10s\n", "p", "b", "genPartition",
              "bucketOriented", "ratio", "limit");
  for (int p = 3; p <= 6; ++p) {
    for (int b : {50, 500, 5000}) {
      const double gp = GeneralizedPartitionReplication(b, p);
      const double bo =
          static_cast<double>(BucketOrientedEdgeReplication(b, p));
      std::printf("%3d %6d %16.1f %16.1f %8.3f %10.3f\n", p, b, gp, bo,
                  gp / bo, 1.0 + 1.0 / (p - 1));
    }
  }

  // Measured cross-check at small scale.
  std::printf("\nmeasured (square, b=12): ");
  const SampleGraph square = SampleGraph::Square();
  const auto cqs = CqsForSample(square);
  const Graph g = ErdosRenyi(600, 4000, 9);
  const auto partition =
      GeneralizedPartitionEnumerate(square, cqs, g, 12, 2, nullptr);
  const auto bucket = BucketOrientedEnumerate(square, cqs, g, 12, 2, nullptr);
  std::printf("genPartition=%.2f bucket=%.2f (formulas %.2f / %llu)\n",
              partition.ReplicationRate(), bucket.ReplicationRate(),
              GeneralizedPartitionReplication(12, 4),
              static_cast<unsigned long long>(
                  BucketOrientedEdgeReplication(12, 4)));
}

}  // namespace
}  // namespace smr

int main() {
  smr::Run();
  return 0;
}
