// Ablations of the paper's design choices, measured on the simulator:
//
//  A. CQ merging (Theorem 4.4): evaluate the square's CQ group as one
//     variable-oriented job vs one job per CQ — measured communication.
//  B. One round vs two rounds: the Section 2.3 one-round algorithm vs the
//     two-round algorithm of [19], sweeping graph density. Two rounds ship
//     2m + #2-paths; one round ships m*b. The crossover the paper's
//     introduction alludes to appears as density grows.
//  C. Partition's duplicate work (Section 2.1): how many triangle
//     discoveries Partition reducers make in total vs the number of
//     distinct triangles (the ordered-bucket algorithm discovers each
//     exactly once by construction).

#include <cstdio>

#include "core/subgraph_enumerator.h"
#include "core/triangle_algorithms.h"
#include "core/two_round_triangles.h"
#include "core/variable_oriented.h"
#include "graph/generators.h"
#include "serial/two_paths.h"
#include "shares/cost_expression.h"

namespace smr {
namespace {

void AblationMerge() {
  std::printf("A. CQ merging (square, measured kv pairs, same shares)\n");
  const Graph g = ErdosRenyi(200, 1200, 3);
  const SubgraphEnumerator enumerator(SampleGraph::Square());
  const std::vector<int> shares = {2, 3, 4, 3};  // ~72 reducers
  const auto merged = enumerator.RunVariableOriented(g, shares, 1, nullptr);
  // Split: one job per CQ, each shipping its own copies of the edges.
  uint64_t split_pairs = 0;
  uint64_t split_outputs = 0;
  for (const auto& cq : enumerator.cqs()) {
    const std::vector<ConjunctiveQuery> single = {cq};
    const auto metrics =
        VariableOrientedEnumerate(SampleGraph::Square(), single, g, shares,
                                  1, nullptr);
    split_pairs += metrics.key_value_pairs;
    split_outputs += metrics.outputs;
  }
  std::printf("  combined: %llu kv pairs, %llu squares\n",
              static_cast<unsigned long long>(merged.key_value_pairs),
              static_cast<unsigned long long>(merged.outputs));
  std::printf("  split:    %llu kv pairs, %llu squares (ratio %.2f)\n\n",
              static_cast<unsigned long long>(split_pairs),
              static_cast<unsigned long long>(split_outputs),
              static_cast<double>(split_pairs) / merged.key_value_pairs);
}

void AblationRounds() {
  std::printf(
      "B. one round (Section 2.3, b=8) vs two rounds ([19]) by density\n");
  std::printf("  %8s %8s %14s %14s %10s\n", "n", "m", "1-round kv",
              "2-round kv", "winner");
  for (const auto& [n, m] : std::vector<std::pair<NodeId, size_t>>{
           {4000, 8000}, {2000, 16000}, {1000, 24000}, {500, 30000}}) {
    const Graph g = ErdosRenyi(n, m, 7);
    const auto one = OrderedBucketTriangles(g, 8, 1, nullptr);
    const auto two = TwoRoundTriangles(g, NodeOrder::ByDegree(g), nullptr);
    std::printf("  %8u %8zu %14llu %14llu %10s\n", n, m,
                static_cast<unsigned long long>(one.key_value_pairs),
                static_cast<unsigned long long>(two.TotalKeyValuePairs()),
                one.key_value_pairs < two.TotalKeyValuePairs() ? "1-round"
                                                               : "2-round");
  }
  std::printf("\n");
}

void AblationPartitionDuplicates() {
  std::printf(
      "C. duplicate discoveries: Partition reducers see triangles whose\n"
      "   nodes span < 3 groups several times (extra compensation work);\n"
      "   ordered buckets discover each exactly once\n");
  const Graph g = ErdosRenyi(600, 6000, 9);
  std::printf("  %4s %20s %18s\n", "b", "partition dup rate",
              "ordered dup rate");
  for (int b : {4, 8, 16}) {
    // The reducer kernels count every local triangle discovery in
    // reduce_cost.outputs (via the serial enumerator) and every *emitted*
    // triangle once more (via EmitInstance); so
    //   local discoveries = reduce_cost.outputs - outputs.
    const auto partition = PartitionTriangles(g, b, 2, nullptr);
    const auto ordered = OrderedBucketTriangles(g, b, 2, nullptr);
    const double partition_rate =
        static_cast<double>(partition.reduce_cost.outputs -
                            partition.outputs) /
        static_cast<double>(partition.outputs);
    const double ordered_rate =
        static_cast<double>(ordered.reduce_cost.outputs - ordered.outputs) /
        static_cast<double>(ordered.outputs);
    std::printf("  %4d %20.3f %18.3f\n", b, partition_rate, ordered_rate);
  }
  std::printf(
      "  (triangles with a same-group edge are re-discovered by every\n"
      "   Partition triple containing that group pair and must be filtered;\n"
      "   ordered buckets emit each exactly once and only re-discover the\n"
      "   small fraction of triangles whose bucket multiset repeats values)\n");
}

}  // namespace
}  // namespace smr

int main() {
  smr::AblationMerge();
  smr::AblationRounds();
  smr::AblationPartitionDuplicates();
  return 0;
}
