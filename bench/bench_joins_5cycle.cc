// Reproduces Section 7.4: output-size bounds for the cyclic 5-way join over
// binary relations of different sizes. For several size vectors we print
// the Case-A/B classification, the matching upper/lower bound, and the
// actual output of the serial join on the witness instances — which should
// meet the bound (up to integer rounding of domain sizes in Case A).

#include <cstdio>

#include "joins/five_cycle_join.h"

namespace smr {
namespace {

void RunCase(const JoinSizes& sizes) {
  const bool case_a = CaseAHolds(sizes);
  const double bound = JoinOutputBound(sizes);
  uint64_t witness_output = 0;
  const char* witness = "-";
  if (case_a) {
    witness_output = CountFiveCycleJoin(CaseAWitness(sizes));
    witness = "A";
  } else {
    // The Case-B witness needs the violated condition at rotation 0 with
    // n2 >= n1*n3 and n4 >= n3*n5 (the paper's subcase (a)); the join is
    // cyclically symmetric, so rotate until it applies.
    for (int r = 0; r < 5; ++r) {
      const JoinSizes rotated = Rotate(sizes, r);
      if (static_cast<double>(rotated[0]) * rotated[2] * rotated[4] <=
              static_cast<double>(rotated[1]) * rotated[3] &&
          rotated[1] >= rotated[0] * rotated[2] &&
          rotated[3] >= rotated[2] * rotated[4]) {
        witness_output = CountFiveCycleJoin(CaseBWitness(rotated));
        witness = "B";
        break;
      }
    }
  }
  std::printf("%8llu %8llu %8llu %8llu %8llu | case %s bound=%12.1f "
              "witness(%s)=%llu\n",
              static_cast<unsigned long long>(sizes[0]),
              static_cast<unsigned long long>(sizes[1]),
              static_cast<unsigned long long>(sizes[2]),
              static_cast<unsigned long long>(sizes[3]),
              static_cast<unsigned long long>(sizes[4]),
              case_a ? "A" : "B", bound, witness,
              static_cast<unsigned long long>(witness_output));
}

void Run() {
  std::printf(
      "Section 7.4: R1(A,B)|><|R2(B,C)|><|R3(C,D)|><|R4(D,E)|><|R5(E,A)\n"
      "bounds and witness outputs\n\n");
  std::printf("%8s %8s %8s %8s %8s |\n", "n1", "n2", "n3", "n4", "n5");
  // Case A, equal sizes (the classic sqrt(prod) = n^{5/2} bound).
  RunCase({36, 36, 36, 36, 36});
  RunCase({100, 100, 100, 100, 100});
  // Case A, unequal but integral domains.
  RunCase({4, 8, 16, 8, 4});
  // Case B: the paper's closing example says (1,n,1,n,1) -> n, but with
  // those labels the formula (and the max possible output) is 1; the
  // intended, self-consistent labeling is the rotation (n,1,n,1,n), whose
  // violated condition sits at attribute B and gives bound n.
  RunCase({1, 64, 1, 64, 1});
  RunCase({64, 1, 64, 1, 64});
  // Case B with larger alternating product.
  RunCase({3, 6, 2, 8, 4});
  RunCase({2, 50, 5, 40, 2});
  std::printf(
      "\nexpected shape: witness output meets the bound exactly when all\n"
      "domain sizes are integral, and is slightly below otherwise.\n");
}

}  // namespace
}  // namespace smr

int main() {
  smr::Run();
  return 0;
}
