// The "curse of the last reducer" ([19], the paper's motivation): on
// skewed (power-law) graphs, naive per-node grouping leaves one giant
// reducer, while the paper's edge-replication schemes bound every reducer's
// input. We measure reducer-input skew (max / mean) for:
//  * naive per-node grouping (every edge sent to both endpoints' reducers,
//    the node-iterator baseline — the cursed one: the hub's reducer gets
//    its whole neighborhood),
//  * round 1 of the two-round algorithm of [19], whose degree ordering
//    already tames the hubs,
//  * the ordered-bucket one-round algorithm,
//  * generic bucket-oriented processing for the square,
// on an Erdős–Rényi graph vs a preferential-attachment graph of equal size.

#include <cstdio>

#include "core/subgraph_enumerator.h"
#include "mapreduce/job.h"
#include "core/triangle_algorithms.h"
#include "core/two_round_triangles.h"
#include "graph/generators.h"
#include "graph/statistics.h"

namespace smr {
namespace {

double Skew(const MapReduceMetrics& metrics) {
  if (metrics.distinct_keys == 0) return 0;
  const double mean = static_cast<double>(metrics.key_value_pairs) /
                      static_cast<double>(metrics.distinct_keys);
  return static_cast<double>(metrics.max_reducer_input) / mean;
}

/// The cursed baseline: group every edge under both endpoints.
MapReduceMetrics NaiveNodeGrouping(const Graph& g) {
  auto map_fn = [](const Edge& e, Emitter<Edge>* out) {
    out->Emit(e.first, e);
    out->Emit(e.second, e);
  };
  auto reduce_fn = [](uint64_t, std::span<const Edge> values,
                      ReduceContext* context) {
    context->cost->edges_scanned += values.size();
  };
  JobDriver driver;
  return driver.RunRound(RoundSpec<Edge, Edge>{"naive-per-node", map_fn,
                                               reduce_fn, g.num_nodes(), {}},
                         g.edges(), nullptr);
}

void Report(const char* name, const Graph& g) {
  const GraphStatistics stats = ComputeStatistics(g);
  std::printf("%s: %s\n", name, stats.ToString().c_str());
  const MapReduceMetrics naive = NaiveNodeGrouping(g);
  const TwoRoundMetrics two_round =
      TwoRoundTriangles(g, NodeOrder::ByDegree(g), nullptr);
  const MapReduceMetrics ordered = OrderedBucketTriangles(g, 8, 3, nullptr);
  const SubgraphEnumerator squares(SampleGraph::Square());
  const MapReduceMetrics bucket = squares.RunBucketOriented(g, 4, 3, nullptr);
  std::printf(
      "  naive per-node grouping:        max=%llu skew=%6.1f\n"
      "  degree-ordered r1 ([19]):       max=%llu skew=%6.1f\n"
      "  ordered buckets (b=8):          max=%llu skew=%6.1f\n"
      "  bucket-oriented square (b=4):   max=%llu skew=%6.1f\n",
      static_cast<unsigned long long>(naive.max_reducer_input), Skew(naive),
      static_cast<unsigned long long>(two_round.round1.max_reducer_input),
      Skew(two_round.round1),
      static_cast<unsigned long long>(ordered.max_reducer_input),
      Skew(ordered),
      static_cast<unsigned long long>(bucket.max_reducer_input),
      Skew(bucket));
}

void Run() {
  std::printf(
      "reducer-input skew: the curse of the last reducer ([19]) and how\n"
      "edge replication bounds it\n\n");
  const NodeId n = 3000;
  const size_t m = 12000;
  Report("uniform (Erdos-Renyi)", ErdosRenyi(n, m, 5));
  std::printf("\n");
  Report("skewed (preferential attachment)",
         PreferentialAttachment(n, static_cast<int>(m / n), 5));
  std::printf(
      "\nexpected shape: naive per-node grouping skew explodes on the\n"
      "power-law graph (the hub reducer receives its whole neighborhood),\n"
      "while the degree ordering of [19] and the paper's hashed-bucket\n"
      "schemes stay within a small factor of the mean on both graphs.\n");
}

}  // namespace
}  // namespace smr

int main() {
  smr::Run();
  return 0;
}
