// Reproduces Theorem 7.3: on data graphs of maximum degree Delta, any
// connected p-node sample graph has an O(m * Delta^{p-2}) enumeration
// algorithm, and the bound is tight — a Delta-regular tree contains
// Theta(m * Delta^{p-2}) p-stars. We measure:
//  * star counts on Delta-regular trees vs the closed form
//    sum_v C(deg(v), p-1),
//  * the instrumented operation count of the bounded-degree algorithm,
//    whose growth with Delta should track Delta^{p-2},
//  * a comparison against the generic matcher on degree-capped graphs.

#include <cmath>
#include <cstdio>

#include "graph/generators.h"
#include "serial/bounded_degree.h"
#include "serial/matcher.h"
#include "util/combinatorics.h"

namespace smr {
namespace {

void Run() {
  std::printf(
      "Theorem 7.3 tightness: p-stars in Delta-regular trees\n"
      "(count ~ m * Delta^{p-2}; ops of the bounded-degree algorithm track "
      "it)\n\n");
  std::printf("%6s %3s %10s %12s %14s %14s %10s\n", "Delta", "p", "m",
              "stars", "closed form", "ops", "ops/mD^p-2");
  for (int p : {3, 4}) {
    const SampleGraph star = SampleGraph::Star(p);
    for (int delta : {4, 8, 16}) {
      const Graph tree = RegularTree(delta, 3);
      uint64_t closed_form = 0;
      for (NodeId u = 0; u < tree.num_nodes(); ++u) {
        closed_form += Binomial(tree.Degree(u), p - 1);
      }
      CostCounter cost;
      CountingSink sink;
      EnumerateBoundedDegree(star, tree, &sink, &cost);
      const double denom =
          static_cast<double>(tree.num_edges()) * std::pow(delta, p - 2);
      std::printf("%6d %3d %10zu %12llu %14llu %14llu %10.2f\n", delta, p,
                  tree.num_edges(),
                  static_cast<unsigned long long>(sink.count()),
                  static_cast<unsigned long long>(closed_form),
                  static_cast<unsigned long long>(cost.Total()),
                  static_cast<double>(cost.Total()) / denom);
    }
  }

  std::printf(
      "\nbounded-degree vs generic matcher on degree-capped random graphs\n"
      "(pattern: square; ops should be comparable, counts identical)\n\n");
  std::printf("%6s %8s %12s %14s %14s\n", "Delta", "m", "squares",
              "bounded ops", "generic ops");
  for (size_t delta : {4, 8, 16}) {
    const Graph g = DegreeCapped(3000, 6000, delta, 11);
    CostCounter bounded_cost;
    CountingSink bounded_sink;
    EnumerateBoundedDegree(SampleGraph::Square(), g, &bounded_sink,
                           &bounded_cost);
    CostCounter generic_cost;
    CountingSink generic_sink;
    EnumerateInstances(SampleGraph::Square(), g, &generic_sink,
                       &generic_cost);
    std::printf("%6zu %8zu %12llu %14llu %14llu%s\n", delta, g.num_edges(),
                static_cast<unsigned long long>(bounded_sink.count()),
                static_cast<unsigned long long>(bounded_cost.Total()),
                static_cast<unsigned long long>(generic_cost.Total()),
                bounded_sink.count() == generic_sink.count() ? ""
                                                             : "  MISMATCH");
  }
}

}  // namespace
}  // namespace smr

int main() {
  smr::Run();
  return 0;
}
