// Regenerates the CQ tables of Section 3:
//  * Example 3.1/3.2 — the three CQs for the square,
//  * Fig. 5 — the twelve quotient-class CQs for the lollipop,
//  * Fig. 6 — their grouping by edge orientation,
//  * Fig. 7 — the six orientation-merged CQs with OR'd conditions.

#include <algorithm>
#include <cstdio>
#include <map>

#include "cq/cq_generation.h"
#include "graph/sample_graph.h"

namespace smr {
namespace {

const std::vector<std::string> kNames = {"W", "X", "Y", "Z"};

std::string OrderToString(const std::vector<int>& order) {
  std::string s;
  for (size_t i = 0; i < order.size(); ++i) {
    if (i > 0) s += "<";
    s += kNames[order[i]];
  }
  return s;
}

void Run() {
  std::printf("Example 3.2: CQs for the square (|Aut| = %zu, 24/8 = 3 CQs)\n",
              SampleGraph::Square().Automorphisms().size());
  for (const auto& cq : CqsForSample(SampleGraph::Square())) {
    std::printf("  %s\n", cq.ToString(kNames).c_str());
  }

  const SampleGraph lollipop = SampleGraph::Lollipop();
  const auto raw = GenerateOrderCqs(lollipop);
  std::printf(
      "\nFig. 5: the twelve CQs for the lollipop (|Aut| = %zu, 24/2 = 12; "
      "representatives keep Y < Z)\n",
      lollipop.Automorphisms().size());
  for (size_t i = 0; i < raw.size(); ++i) {
    std::printf("  %2zu. order %-10s  %s\n", i + 1,
                OrderToString(raw[i].allowed_orders()[0]).c_str(),
                raw[i].ToString(kNames).c_str());
  }

  std::printf("\nFig. 6: grouping by edge orientation\n");
  std::map<std::vector<std::pair<int, int>>, std::vector<size_t>> groups;
  for (size_t i = 0; i < raw.size(); ++i) {
    groups[raw[i].subgoals()].push_back(i + 1);
  }
  for (const auto& [subgoals, members] : groups) {
    std::string orientation;
    for (const auto& [a, b] : subgoals) {
      orientation += kNames[a] + kNames[b] + " ";
    }
    std::string ids;
    for (size_t id : members) {
      if (!ids.empty()) ids += ", ";
      ids += std::to_string(id);
    }
    std::printf("  %-16s <- CQs {%s}\n", orientation.c_str(), ids.c_str());
  }

  std::printf("\nFig. 7: the six merged CQs (conditions OR'd)\n");
  const auto merged = MergeByOrientation(raw);
  for (const auto& cq : merged) {
    std::printf("  %s   [%zu order(s)]\n", cq.ToString(kNames).c_str(),
                cq.allowed_orders().size());
  }
  std::printf("\ncounts: raw=%zu merged=%zu (paper: 12 and 6)\n", raw.size(),
              merged.size());
}

}  // namespace
}  // namespace smr

int main() {
  smr::Run();
  return 0;
}
