// Extension experiment (Section 8 / Section 1.1): labeled-edge enumeration.
// Shows the paper's prediction that label-preserving automorphism groups
// are smaller, so the CQ count grows, while the communication cost of
// bucket-oriented processing is unchanged (labels ride along with edges).

#include <cstdio>
#include <set>

#include "cq/cq_generation.h"
#include "labeled/labeled_enumeration.h"
#include "util/rng.h"

namespace smr {
namespace {

LabeledGraph RandomLabeledGraph(NodeId n, size_t m, int num_labels,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<LabeledEdge> edges;
  std::set<std::pair<NodeId, NodeId>> seen;
  while (edges.size() < m) {
    NodeId u = static_cast<NodeId>(rng.Below(n));
    NodeId v = static_cast<NodeId>(rng.Below(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (!seen.insert({u, v}).second) continue;
    edges.push_back({u, v, static_cast<EdgeLabel>(rng.Below(num_labels))});
  }
  return LabeledGraph(n, std::move(edges));
}

void Run() {
  std::printf(
      "Section 8 extension: labeled edges (relations per label)\n\n"
      "pattern catalog: 0 = 'knows', 1 = 'buys from'\n\n");
  struct Case {
    const char* name;
    LabeledSampleGraph pattern;
    size_t unlabeled_cqs;
  };
  const Case cases[] = {
      {"triangle (uniform)",
       LabeledSampleGraph(3, {{0, 1, 0}, {1, 2, 0}, {0, 2, 0}}),
       CqsForSample(SampleGraph::Triangle()).size()},
      {"triangle (one 'buys')",
       LabeledSampleGraph(3, {{0, 1, 0}, {1, 2, 0}, {0, 2, 1}}),
       CqsForSample(SampleGraph::Triangle()).size()},
      {"square (alternating)",
       LabeledSampleGraph(4, {{0, 1, 0}, {1, 2, 1}, {2, 3, 0}, {0, 3, 1}}),
       CqsForSample(SampleGraph::Square()).size()},
      {"square (one 'buys')",
       LabeledSampleGraph(4, {{0, 1, 1}, {1, 2, 0}, {2, 3, 0}, {0, 3, 0}}),
       CqsForSample(SampleGraph::Square()).size()},
  };

  const LabeledGraph g = RandomLabeledGraph(400, 2400, 2, 11);
  std::printf("data graph: n=%u m=%zu, labels ~ uniform over 2\n\n",
              g.num_nodes(), g.num_edges());
  std::printf("%-24s %8s %12s %10s %12s %10s\n", "pattern", "|Aut|",
              "labeled CQs", "unlabeled", "instances", "repl/edge");
  for (const auto& c : cases) {
    const auto cqs = LabeledCqsForSample(c.pattern);
    const auto metrics =
        LabeledBucketOrientedEnumerate(c.pattern, g, 4, 3, nullptr);
    const uint64_t serial =
        EnumerateLabeledInstances(c.pattern, g, nullptr, nullptr);
    std::printf("%-24s %8zu %12zu %10zu %12llu %10.1f%s\n", c.name,
                c.pattern.Automorphisms().size(), cqs.size(), c.unlabeled_cqs,
                static_cast<unsigned long long>(metrics.outputs),
                metrics.ReplicationRate(),
                metrics.outputs == serial ? "" : "  MISMATCH");
  }
  std::printf(
      "\nexpected shape: fewer label-preserving automorphisms => more CQs;\n"
      "replication stays C(b+p-3, p-2) regardless of labels.\n");
}

}  // namespace
}  // namespace smr

int main() {
  smr::Run();
  return 0;
}
