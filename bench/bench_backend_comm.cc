// Closes the paper's communication-cost loop: the model (Section 1.2)
// prices a round at key_value_pairs x record_size bytes; the process
// backend (mapreduce/process_backend.h) ships every shuffled pair across a
// real kernel socket and counts the bytes. This bench runs the Fig. 1 and
// Fig. 2 triangle scenarios under BackendMode::kProcess and prints the
// measured map->coordinator wire bytes next to the modeled bytes, per
// strategy. Varint framing compresses small reducer keys and the length
// prefix adds a little, so measured/modeled sits near (8 + key bytes +
// framing) / 16 — well inside the 1.5x band the acceptance criteria pin.
//
// Exit status: 0 when every Fig. 1 scenario's measured bytes are within
// 1.5x of the modeled bytes (both directions), 1 otherwise — so CI can run
// this as a check, not just a table.
//
// Each run also feeds CostCalibration::Observe, then prints the calibrated
// bytes-per-pair table `auto:<k>` would price plans with — the advisor's
// measured-cost hook exercised end to end.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/plan_advisor.h"
#include "core/strategy.h"
#include "graph/generators.h"
#include "graph/sample_graph.h"
#include "mapreduce/execution_policy.h"
#include "mapreduce/fault_injection.h"
#include "shares/replication_formulas.h"

namespace smr {
namespace {

struct MeasuredRow {
  std::string spec;
  uint64_t logical_pairs = 0;
  uint64_t modeled_bytes = 0;   // sum of key_value_pairs x record_size
  uint64_t measured_bytes = 0;  // sum of map_bytes_on_wire
  uint64_t outputs = 0;
  double Ratio() const {
    return modeled_bytes == 0
               ? 0.0
               : static_cast<double>(measured_bytes) /
                     static_cast<double>(modeled_bytes);
  }
};

/// Runs one registry spec on the process backend and sums the modeled and
/// measured byte costs over the job's rounds.
MeasuredRow RunOnWire(const std::string& spec, const SampleGraph& pattern,
                      const Graph& graph, unsigned workers) {
  const ExecutionPolicy policy =
      ExecutionPolicy::Serial().WithBackend(BackendMode::kProcess, workers);
  const EnumerationResult result = StrategyRegistry::Global().Run(
      EnumerationQuery::Undirected(pattern, graph)
          .WithStrategy(spec)
          .WithPolicy(policy));
  MeasuredRow row;
  row.spec = spec;
  row.outputs = result.instances;
  for (const JobRoundMetrics& round : result.job.rounds) {
    row.logical_pairs += round.metrics.key_value_pairs;
    row.modeled_bytes += round.metrics.bytes;
    row.measured_bytes += round.metrics.shuffle.map_bytes_on_wire;
  }
  CostCalibration::Global().Observe(result.resolved_spec.name, result.job);
  return row;
}

bool PrintRow(const MeasuredRow& row, bool enforce) {
  const double ratio = row.Ratio();
  const bool ok = !enforce || (ratio >= 1.0 / 1.5 && ratio <= 1.5);
  std::printf("%-16s %12llu %14llu %14llu %8.3f%s\n", row.spec.c_str(),
              static_cast<unsigned long long>(row.logical_pairs),
              static_cast<unsigned long long>(row.modeled_bytes),
              static_cast<unsigned long long>(row.measured_bytes), ratio,
              ok ? "" : "  <-- OUTSIDE 1.5x");
  return ok;
}

int Run() {
  const SampleGraph pattern = SampleGraph::Triangle();
  constexpr unsigned kWorkers = 4;
  bool ok = true;

  // Fig. 1 scenarios: the three one-round triangle algorithms at the
  // paper's comparable reducer budgets, on the Fig. 1 data graph.
  {
    const Graph g = ErdosRenyi(2000, 20000, 42);
    std::printf(
        "Fig.1 scenarios on the process backend (%u workers)\n"
        "data graph: n=%u m=%zu (Erdos-Renyi)\n\n",
        kWorkers, g.num_nodes(), g.num_edges());
    std::printf("%-16s %12s %14s %14s %8s\n", "strategy", "pairs",
                "modeled bytes", "wire bytes", "ratio");
    for (const char* spec :
         {"partition:6", "partition:12", "multiway:4", "multiway:6",
          "orderedbucket:8", "orderedbucket:10"}) {
      ok &= PrintRow(RunOnWire(spec, pattern, g, kWorkers), true);
    }
  }

  // Fig. 2 scenario: the same three algorithms at the figure's reducer
  // counts (220 / 216 / 220) on the Fig. 2 graph, plus the bucket and
  // two-round pipelines for a multi-round row. Reported, not enforced —
  // the 1.5x acceptance band is the Fig. 1 criterion.
  {
    const Graph g = ErdosRenyi(3000, 36000, 7);
    std::printf(
        "\nFig.2 scenarios on the process backend (%u workers)\n"
        "data graph: n=%u m=%zu (Erdos-Renyi)\n\n",
        kWorkers, g.num_nodes(), g.num_edges());
    std::printf("%-16s %12s %14s %14s %8s\n", "strategy", "pairs",
                "modeled bytes", "wire bytes", "ratio");
    for (const char* spec : {"partition:12", "multiway:6", "orderedbucket:10",
                             "bucket:10", "tworound"}) {
      PrintRow(RunOnWire(spec, pattern, g, kWorkers), false);
    }
  }

  // Fault-recovery overhead: the Fig. 1 bucket round once clean and once
  // with a mapper SIGKILLed mid-stream and deterministically re-executed
  // under a 2-attempt retry budget. Reported, not enforced — the premium
  // is bounded by one worker's slice plus a respawn, and both runs must
  // land on the same instance count (checked, since a silent divergence
  // would invalidate the whole table).
  {
    const Graph g = ErdosRenyi(2000, 20000, 42);
    const auto timed_run = [&](FaultInjector* injector, uint64_t* instances,
                               uint64_t* retries) {
      ExecutionPolicy policy =
          ExecutionPolicy::Serial()
              .WithBackend(BackendMode::kProcess, kWorkers)
              .WithRetry(RetryPolicy{2, 0, 2.0})
              .WithFaultInjector(injector);
      const auto start = std::chrono::steady_clock::now();
      const EnumerationResult result = StrategyRegistry::Global().Run(
          EnumerationQuery::Undirected(pattern, g)
              .WithStrategy("bucket:6")
              .WithPolicy(policy));
      const auto stop = std::chrono::steady_clock::now();
      *instances = result.instances;
      *retries = 0;
      for (const JobRoundMetrics& round : result.job.rounds) {
        *retries += round.metrics.shuffle.worker_retries;
      }
      return std::chrono::duration<double, std::milli>(stop - start).count();
    };

    uint64_t clean_instances = 0, clean_retries = 0;
    uint64_t faulted_instances = 0, faulted_retries = 0;
    // Untimed warmup so the clean run doesn't absorb first-fork and
    // page-cache costs the faulted run would then appear to beat.
    timed_run(nullptr, &clean_instances, &clean_retries);
    const double clean_ms =
        timed_run(nullptr, &clean_instances, &clean_retries);
    FaultInjector injector(ParseFaultPlan("map:kill:1:after=5"));
    const double faulted_ms =
        timed_run(&injector, &faulted_instances, &faulted_retries);

    std::printf(
        "\nfault-recovery overhead (bucket:6 on the Fig.1 graph, "
        "map worker killed mid-stream):\n"
        "  clean run:            %8.1f ms  (%llu instances)\n"
        "  killed + re-executed: %8.1f ms  (%llu instances, %llu retry)\n"
        "  recovery premium:     %+7.1f%%\n",
        clean_ms, static_cast<unsigned long long>(clean_instances),
        faulted_ms, static_cast<unsigned long long>(faulted_instances),
        static_cast<unsigned long long>(faulted_retries),
        clean_ms > 0 ? (faulted_ms / clean_ms - 1.0) * 100.0 : 0.0);
    ok &= clean_instances == faulted_instances && faulted_retries == 1;
  }

  // The advisor hook, fed by the runs above: measured bytes per logical
  // pair, the factor auto:<k> now folds into each candidate's closed-form
  // pairs-per-edge estimate.
  std::printf("\ncalibrated bytes/pair (CostCalibration, modeled = %.1f):\n",
              CostCalibration::kModeledBytesPerPair);
  for (const char* name :
       {"partition", "multiway", "orderedbucket", "bucket", "tworound"}) {
    const auto measured = CostCalibration::Global().BytesPerPair(name);
    if (measured) {
      std::printf("  %-14s %6.2f\n", name, *measured);
    }
  }

  std::printf("\n%s\n", ok ? "OK: every Fig.1 scenario within 1.5x of "
                             "key_value_pairs x record_size"
                           : "FAIL: a Fig.1 scenario left the 1.5x band");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace smr

int main() { return smr::Run(); }
