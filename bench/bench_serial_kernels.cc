// Scaling of the serial kernels of Sections 6-7:
//  * properly ordered 2-paths (Lemma 7.1) — count and generation cost are
//    O(m^{3/2}); the table shows ops / m^{3/2} staying bounded as m grows,
//  * triangle enumeration [18] — same O(m^{3/2}) shape,
//  * OddCycle (Algorithm 1) for C5 — a (0, 5/2)-algorithm; on sparse graphs
//    ops grow ~ m^{5/2} (reported as ops / m^{5/2}),
//  * decomposition-based enumeration (Theorem 7.2) for the lollipop.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "graph/generators.h"
#include "graph/intersect.h"
#include "graph/node_order.h"
#include "serial/decomposition.h"
#include "serial/matcher.h"
#include "serial/odd_cycle.h"
#include "serial/triangles.h"
#include "serial/two_paths.h"

namespace smr {
namespace {

/// Scalar vs dispatched intersection throughput at several size ratios —
/// the primitive everything in the Lemma 7.1 tables below bottoms out in.
void RunIntersectTable() {
  std::printf("sorted-set intersection (dispatched = %s)\n\n",
              SimdLevelName(ActiveSimdLevel()));
  std::printf("%8s %8s %12s %14s %14s %8s\n", "|a|", "|b|", "matches",
              "scalar ns/op", "dispatch ns/op", "speedup");
  std::mt19937 rng(99);
  for (const size_t ratio : {size_t{1}, size_t{32}, size_t{1024}}) {
    const size_t size = 4096;
    std::uniform_int_distribution<NodeId> dist(
        0, static_cast<NodeId>(4 * size));
    auto make = [&](size_t n) {
      std::vector<NodeId> v(n);
      for (NodeId& x : v) x = dist(rng);
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
      return v;
    };
    const auto a = make(std::max<size_t>(1, size / ratio));
    const auto b = make(size);
    auto time_ns = [&](auto&& fn) {
      const int reps = 2000;
      volatile size_t sink = 0;
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < reps; ++i) sink = sink + fn(a, b);
      const auto stop = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::nano>(stop - start).count() /
             reps;
    };
    const double scalar_ns = time_ns(intersect_detail::IntersectCountScalar);
    const double dispatch_ns = time_ns(
        [](std::span<const NodeId> x, std::span<const NodeId> y) {
          return IntersectCount(x, y);
        });
    std::printf("%8zu %8zu %12zu %14.1f %14.1f %7.2fx\n", a.size(), b.size(),
                IntersectCount(a, b), scalar_ns, dispatch_ns,
                scalar_ns / dispatch_ns);
  }
  std::printf("\n");
}

void Run() {
  RunIntersectTable();

  std::printf("Lemma 7.1 / O(m^{3/2}) kernels\n\n");
  std::printf("%8s %12s %14s %12s %14s %12s\n", "m", "2-paths",
              "2path/m^1.5", "triangles", "tri ops", "ops/m^1.5");
  for (size_t m : {2000, 8000, 32000}) {
    const Graph g = ErdosRenyi(static_cast<NodeId>(m / 4), m, 3);
    CostCounter two_path_cost;
    const uint64_t paths = EnumerateProperlyOrderedTwoPaths(
        g, NodeOrder::ByDegree(g), nullptr, &two_path_cost);
    CostCounter triangle_cost;
    const uint64_t triangles = EnumerateTriangles(
        g, NodeOrder::ByDegree(g), nullptr, &triangle_cost);
    const double m15 = std::pow(static_cast<double>(m), 1.5);
    std::printf("%8zu %12llu %14.3f %12llu %14llu %12.3f\n", m,
                static_cast<unsigned long long>(paths),
                static_cast<double>(paths) / m15,
                static_cast<unsigned long long>(triangles),
                static_cast<unsigned long long>(triangle_cost.Total()),
                static_cast<double>(triangle_cost.Total()) / m15);
  }

  std::printf("\nAlgorithm 1 (OddCycle) for C5: ops vs m^{5/2}\n\n");
  std::printf("%8s %10s %14s %14s\n", "m", "C5s", "ops", "ops/m^2.5");
  for (size_t m : {100, 200, 400}) {
    const Graph g = ErdosRenyi(static_cast<NodeId>(m / 2), m, 5);
    CostCounter cost;
    const uint64_t cycles =
        EnumerateOddCycles(g, NodeOrder::ByDegree(g), 2, nullptr, &cost);
    std::printf("%8zu %10llu %14llu %14.4f\n", m,
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(cost.Total()),
                static_cast<double>(cost.Total()) /
                    std::pow(static_cast<double>(m), 2.5));
  }

  std::printf(
      "\nTheorem 7.2 decomposition enumeration (lollipop = two edges)\n\n");
  std::printf("%8s %12s %14s %20s\n", "m", "lollipops", "ops",
              "matches matcher");
  for (size_t m : {400, 800, 1600}) {
    const Graph g = ErdosRenyi(static_cast<NodeId>(m / 4), m, 7);
    const auto decomposition = DecomposeSample(SampleGraph::Lollipop());
    CostCounter cost;
    CountingSink sink;
    EnumerateByDecomposition(SampleGraph::Lollipop(), *decomposition, g,
                             &sink, &cost);
    const uint64_t expected = CountInstances(SampleGraph::Lollipop(), g);
    std::printf("%8zu %12llu %14llu %20s\n", m,
                static_cast<unsigned long long>(sink.count()),
                static_cast<unsigned long long>(cost.Total()),
                sink.count() == expected ? "yes" : "NO");
  }
}

}  // namespace
}  // namespace smr

int main() {
  smr::Run();
  return 0;
}
