// Reproduces Theorem 6.1 (convertible algorithms): the total instrumented
// computation cost over all reducers stays within a constant factor of the
// serial algorithm's cost as the number of reducers grows, when
// p <= alpha + 2*beta. Shown for triangles (p=3, (0,3/2)-algorithm, Example
// 6.1) and squares/lollipops via the CQ evaluator at the reducers.
// Also prints the (alpha, beta) costs and convertibility verdicts of the
// decomposition algorithm (Theorem 7.2) for a catalog of patterns.

#include <cstdio>

#include "core/subgraph_enumerator.h"
#include "graph/generators.h"
#include "serial/convertible.h"
#include "serial/decomposition.h"
#include "serial/triangles.h"
#include "cq/cq_evaluator.h"

namespace smr {
namespace {

void Run() {
  const Graph g = ErdosRenyi(1200, 14000, 17);
  std::printf(
      "Theorem 6.1: total reducer ops vs serial ops (should stay within a\n"
      "constant factor as reducers grow)\n\n");

  const SampleGraph patterns[] = {SampleGraph::Triangle(),
                                  SampleGraph::Square(),
                                  SampleGraph::Lollipop()};
  for (const auto& pattern : patterns) {
    const SubgraphEnumerator enumerator(pattern);
    CostCounter serial_cost;
    // Serial baseline: the CQ evaluator on the whole graph (the same kernel
    // the reducers run), so the comparison is apples to apples.
    const CqEvaluator evaluator(g, NodeOrder::Identity(g.num_nodes()));
    const uint64_t serial_found =
        evaluator.EvaluateAll(enumerator.cqs(), nullptr, &serial_cost);
    std::printf("%s  instances=%llu serial_ops=%llu\n",
                pattern.ToString().c_str(),
                static_cast<unsigned long long>(serial_found),
                static_cast<unsigned long long>(serial_cost.Total()));
    std::printf("  %4s %12s %14s %12s %8s\n", "b", "reducers", "reduce_ops",
                "outputs", "ratio");
    for (int b : {2, 3, 4, 6}) {
      const auto metrics = enumerator.RunBucketOriented(g, b, 1, nullptr);
      std::printf("  %4d %12llu %14llu %12llu %8.2f\n", b,
                  static_cast<unsigned long long>(metrics.key_space),
                  static_cast<unsigned long long>(metrics.reduce_cost.Total()),
                  static_cast<unsigned long long>(metrics.outputs),
                  static_cast<double>(metrics.reduce_cost.Total()) /
                      static_cast<double>(serial_cost.Total()));
    }
    std::printf("\n");
  }

  std::printf("Theorem 7.2: decomposition costs and convertibility\n");
  const SampleGraph catalog[] = {
      SampleGraph::Triangle(), SampleGraph::Square(), SampleGraph::Lollipop(),
      SampleGraph::Cycle(5),   SampleGraph::Cycle(6), SampleGraph::Clique(4),
      SampleGraph::Path(4),    SampleGraph::Star(4),  SampleGraph::Star(5)};
  for (const auto& pattern : catalog) {
    const auto decomposition = DecomposeSample(pattern);
    const SerialCost cost = CostOfDecomposition(*decomposition);
    std::printf("  %-30s %-34s %s convertible=%s\n",
                pattern.ToString().c_str(), decomposition->ToString().c_str(),
                cost.ToString().c_str(),
                IsConvertible(cost, pattern.num_vars()) ? "yes" : "no");
  }
}

}  // namespace
}  // namespace smr

int main() {
  smr::Run();
  return 0;
}
