// Google-benchmark microbenchmarks of the library's hot kernels: edge-index
// probes, serial triangle enumeration, the CQ evaluator, the bucket-oriented
// map-reduce round, and the share optimizer.

#include <benchmark/benchmark.h>

#include "core/subgraph_enumerator.h"
#include "cq/cq_evaluator.h"
#include "cq/cq_generation.h"
#include "graph/generators.h"
#include "serial/triangles.h"
#include "shares/share_optimizer.h"

namespace smr {
namespace {

void BM_EdgeIndexProbe(benchmark::State& state) {
  const Graph g = ErdosRenyi(10000, 50000, 1);
  NodeId u = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.HasEdge(u, u + 17));
    u = (u + 31) % (g.num_nodes() - 20);
  }
}
BENCHMARK(BM_EdgeIndexProbe);

void BM_SerialTriangles(benchmark::State& state) {
  const Graph g =
      ErdosRenyi(static_cast<NodeId>(state.range(0)), 4 * state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTriangles(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SerialTriangles)->Range(1 << 10, 1 << 14)->Complexity();

void BM_CqEvaluatorSquare(benchmark::State& state) {
  const Graph g = ErdosRenyi(2000, 8000, 3);
  const auto cqs = CqsForSample(SampleGraph::Square());
  const CqEvaluator evaluator(g, NodeOrder::Identity(g.num_nodes()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.EvaluateAll(cqs, nullptr, nullptr));
  }
}
BENCHMARK(BM_CqEvaluatorSquare);

void BM_BucketOrientedTriangles(benchmark::State& state) {
  const Graph g = ErdosRenyi(2000, 10000, 4);
  const SubgraphEnumerator enumerator(SampleGraph::Triangle());
  const int b = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        enumerator.RunBucketOriented(g, b, 1, nullptr).outputs);
  }
}
BENCHMARK(BM_BucketOrientedTriangles)->Arg(2)->Arg(4)->Arg(8);

void BM_ShareOptimizer(benchmark::State& state) {
  const auto cqs = CqsForSample(SampleGraph::Cycle(6));
  const auto expression = CostExpression::ForCqSet(cqs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(OptimizeShares(expression, 500000).cost_per_edge);
  }
}
BENCHMARK(BM_ShareOptimizer);

void BM_GraphConstruction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ErdosRenyi(5000, 25000, state.iterations()).num_edges());
  }
}
BENCHMARK(BM_GraphConstruction);

}  // namespace
}  // namespace smr

BENCHMARK_MAIN();
