// Google-benchmark microbenchmarks of the library's hot kernels: edge-index
// probes, serial triangle enumeration, the CQ evaluator, the bucket-oriented
// map-reduce round, and the share optimizer.

#include <algorithm>
#include <cstdio>
#include <random>
#include <thread>

#include <benchmark/benchmark.h>

#include "core/subgraph_enumerator.h"
#include "graph/intersect.h"
#include "mapreduce/thread_pool.h"
#include "cq/cq_evaluator.h"
#include "cq/cq_generation.h"
#include "graph/generators.h"
#include "mapreduce/job.h"
#include "serial/triangles.h"
#include "shares/share_optimizer.h"
#include "util/hashing.h"

namespace smr {
namespace {

void BM_EdgeIndexProbe(benchmark::State& state) {
  const Graph g = ErdosRenyi(10000, 50000, 1);
  NodeId u = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.HasEdge(u, u + 17));
    u = (u + 31) % (g.num_nodes() - 20);
  }
}
BENCHMARK(BM_EdgeIndexProbe);

/// Sorted lists with ~50% mutual overlap; `ratio` shrinks the first list to
/// size/ratio, moving the workload from the block-compare regime (1:1) into
/// the skewed regime the galloping / narrow-side paths serve.
std::pair<std::vector<NodeId>, std::vector<NodeId>> IntersectInputs(
    size_t size, size_t ratio) {
  std::mt19937 rng(99);
  std::uniform_int_distribution<NodeId> dist(0,
                                             static_cast<NodeId>(4 * size));
  auto make = [&](size_t n) {
    std::vector<NodeId> v(n);
    for (NodeId& x : v) x = dist(rng);
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
  };
  return {make(std::max<size_t>(1, size / ratio)), make(size)};
}

void BM_IntersectCount(benchmark::State& state) {
  const auto [a, b] = IntersectInputs(static_cast<size_t>(state.range(0)),
                                      static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectCount(a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_IntersectCount)
    ->ArgNames({"size", "ratio"})
    ->Args({4096, 1})
    ->Args({4096, 32})
    ->Args({4096, 1024});

void BM_IntersectCountScalar(benchmark::State& state) {
  const auto [a, b] = IntersectInputs(static_cast<size_t>(state.range(0)),
                                      static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(intersect_detail::IntersectCountScalar(a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_IntersectCountScalar)
    ->ArgNames({"size", "ratio"})
    ->Args({4096, 1})
    ->Args({4096, 32})
    ->Args({4096, 1024});

void BM_SerialTriangles(benchmark::State& state) {
  const Graph g =
      ErdosRenyi(static_cast<NodeId>(state.range(0)), 4 * state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTriangles(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SerialTriangles)->Range(1 << 10, 1 << 14)->Complexity();

void BM_CqEvaluatorSquare(benchmark::State& state) {
  const Graph g = ErdosRenyi(2000, 8000, 3);
  const auto cqs = CqsForSample(SampleGraph::Square());
  const CqEvaluator evaluator(g, NodeOrder::Identity(g.num_nodes()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.EvaluateAll(cqs, nullptr, nullptr));
  }
}
BENCHMARK(BM_CqEvaluatorSquare);

void BM_BucketOrientedTriangles(benchmark::State& state) {
  const Graph g = ErdosRenyi(2000, 10000, 4);
  const SubgraphEnumerator enumerator(SampleGraph::Triangle());
  const int b = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        enumerator.RunBucketOriented(g, b, 1, nullptr).outputs);
  }
}
BENCHMARK(BM_BucketOrientedTriangles)->Arg(2)->Arg(4)->Arg(8);

void BM_ShareOptimizer(benchmark::State& state) {
  const auto cqs = CqsForSample(SampleGraph::Cycle(6));
  const auto expression = CostExpression::ForCqSet(cqs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(OptimizeShares(expression, 500000).cost_per_edge);
  }
}
BENCHMARK(BM_ShareOptimizer);

void BM_GraphConstruction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ErdosRenyi(5000, 25000, state.iterations()).num_edges());
  }
}
BENCHMARK(BM_GraphConstruction);

/// Isolates the engine's shuffle: a round with trivial map/reduce work so
/// that grouping 4M key-value pairs dominates. Arg 0 selects the shuffle
/// (0 = sort, 1 = partitioned), arg 1 the partitioned shuffle's grouping
/// (0 = stable_sort, 1 = counting scatter — the keys are dense in a
/// declared 2^16 key space, the counting path's home turf), under
/// ExecutionPolicy::MaxParallel(). The sort-vs-partitioned gap is the cost
/// of the sort shuffle's serial O(C log C) barrier; the sort-group vs
/// counting gap is the per-partition O(n log n) -> O(n) grouping win.
void BM_EngineShuffle(benchmark::State& state) {
  const size_t n = 1 << 20;
  std::vector<int> inputs(n);
  for (size_t i = 0; i < n; ++i) inputs[i] = static_cast<int>(i);
  const uint64_t key_space = 1 << 16;
  auto map_fn = [key_space](const int& value, Emitter<int>* out) {
    for (int e = 0; e < 4; ++e) {
      out->Emit(SplitMix64(static_cast<uint64_t>(value) * 4 + e) % key_space,
                value);
    }
  };
  auto reduce_fn = [](uint64_t, std::span<const int> values,
                      ReduceContext* context) {
    context->cost->edges_scanned += values.size();
  };
  // At least 2 workers even on a single hardware context, so the parallel
  // shuffle paths (not the serial fallback) are what gets measured.
  const ExecutionPolicy policy =
      ExecutionPolicy::WithThreads(
          std::max(2u, ExecutionPolicy::MaxParallel().num_threads))
          .WithShuffle(state.range(0) == 0 ? ShuffleMode::kSort
                                           : ShuffleMode::kPartitioned)
          .WithGroup(state.range(1) == 0 ? GroupMode::kSort
                                         : GroupMode::kCounting);
  const RoundSpec<int, int> round{"shuffle-bench", map_fn, reduce_fn,
                                  key_space, {}};
  for (auto _ : state) {
    JobDriver driver(policy);
    benchmark::DoNotOptimize(
        driver.RunRound(round, inputs, nullptr).distinct_keys);
  }
}
BENCHMARK(BM_EngineShuffle)
    ->ArgNames({"partitioned", "counting"})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({1, 1});

/// Latency of waking the persistent pool for one parallel phase (the
/// per-phase overhead a multi-round job pays after its first phase
/// spawned the threads), vs spawning and joining fresh std::threads the
/// way the engine did before the pool existed.
void BM_ThreadPoolDispatch(benchmark::State& state) {
  ThreadPool pool;
  pool.Run(4, [](size_t) {});  // Warm up: spawn outside the timed loop.
  for (auto _ : state) {
    pool.Run(4, [](size_t) {});
  }
}
BENCHMARK(BM_ThreadPoolDispatch);

void BM_ThreadSpawnDispatch(benchmark::State& state) {
  for (auto _ : state) {
    std::thread workers[3];
    for (auto& worker : workers) worker = std::thread([] {});
    for (auto& worker : workers) worker.join();
  }
}
BENCHMARK(BM_ThreadSpawnDispatch);

}  // namespace
}  // namespace smr

int main(int argc, char** argv) {
  // Which ISA the intersection kernels dispatched to — a measurement is
  // meaningless without it (set SMR_FORCE_SCALAR=1 to pin the scalar path).
  std::printf("intersect kernels: %s\n",
              smr::SimdLevelName(smr::ActiveSimdLevel()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
