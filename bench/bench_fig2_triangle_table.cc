// Reproduces Fig. 2 of the paper: the three triangle algorithms at specific
// reducer counts — Partition with 12 groups (C(12,3) = 220 reducers),
// multiway join with b = 6 (216 reducers), ordered buckets with b = 10
// (C(12,3) = 220 reducers). The paper's communication costs: 13.75m, 16m,
// 10m. All three must report the same triangle count.

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "core/strategy.h"
#include "graph/generators.h"
#include "graph/sample_graph.h"
#include "mapreduce/execution_policy.h"
#include "serial/triangles.h"
#include "shares/replication_formulas.h"
#include "util/combinatorics.h"

namespace smr {
namespace {

void Run() {
  const SampleGraph pattern = SampleGraph::Triangle();
  const Graph g = ErdosRenyi(3000, 36000, 7);
  const auto RunSpec = [&](const char* spec,
                           const ExecutionPolicy& policy =
                               ExecutionPolicy::Serial()) {
    return StrategyRegistry::Global().Run(
        EnumerationQuery::Undirected(pattern, g)
            .WithStrategy(spec)
            .WithSeed(3)
            .WithPolicy(policy));
  };
  const uint64_t serial = CountTriangles(g);
  std::printf(
      "Fig.2: triangle algorithms at comparable reducer counts\n"
      "data graph: n=%u m=%zu, triangles=%llu\n\n",
      g.num_nodes(), g.num_edges(),
      static_cast<unsigned long long>(serial));
  std::printf("%-12s %8s %10s %14s %14s %10s\n", "algorithm", "buckets",
              "reducers", "comm/edge", "paper", "found");

  const auto partition = RunSpec("partition:12").metrics;
  std::printf("%-12s %8d %10llu %14.2f %14.2f %10llu\n", "Partition", 12,
              static_cast<unsigned long long>(partition.key_space),
              partition.ReplicationRate(), 13.75,
              static_cast<unsigned long long>(partition.outputs));

  const auto multiway = RunSpec("multiway:6").metrics;
  std::printf("%-12s %8d %10llu %14.2f %14.2f %10llu\n", "multiway", 6,
              static_cast<unsigned long long>(multiway.key_space),
              multiway.ReplicationRate(), 16.0,
              static_cast<unsigned long long>(multiway.outputs));

  const auto ordered = RunSpec("orderedbucket:10").metrics;
  std::printf("%-12s %8d %10llu %14.2f %14.2f %10llu\n", "ordered", 10,
              static_cast<unsigned long long>(ordered.key_space),
              ordered.ReplicationRate(), 10.0,
              static_cast<unsigned long long>(ordered.outputs));

  const bool all_equal =
      partition.outputs == serial && multiway.outputs == serial &&
      ordered.outputs == serial;
  std::printf("\nall algorithms agree with serial count: %s\n",
              all_equal ? "yes" : "NO — BUG");

  // Host-side engine scheduling: one thread vs. one per hardware context.
  // Identical metrics by the engine's determinism guarantee; only wall
  // clock may change.
  const ExecutionPolicy parallel = ExecutionPolicy::MaxParallel();
  // One warm-up then best-of-3 per policy, as in bench_parallel_speedup.
  const auto TimeOrdered = [&](const ExecutionPolicy& policy) {
    uint64_t found = 0;
    const auto once = [&] {
      const auto start = std::chrono::steady_clock::now();
      found = RunSpec("orderedbucket:10", policy).instances;
      const auto stop = std::chrono::steady_clock::now();
      return std::chrono::duration<double, std::milli>(stop - start).count();
    };
    once();
    double best = once();
    for (int r = 0; r < 2; ++r) best = std::min(best, once());
    return std::make_pair(best, found);
  };
  const auto [serial_ms, serial_found] = TimeOrdered(ExecutionPolicy::Serial());
  const auto [parallel_ms, parallel_found] = TimeOrdered(parallel);
  std::printf(
      "\nordered b=10 engine timing: serial %.2f ms, %u-thread %.2f ms "
      "(speedup %.2fx), counts %s\n",
      serial_ms, parallel.num_threads, parallel_ms, serial_ms / parallel_ms,
      serial_found == parallel_found ? "identical" : "DIFFER — BUG");
}

}  // namespace
}  // namespace smr

int main() {
  smr::Run();
  return 0;
}
