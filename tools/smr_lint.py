#!/usr/bin/env python3
"""Project-specific lint checks for the smr codebase.

Dependency-free (stdlib only) so it runs anywhere a python3 exists — in
particular in CI next to clang-tidy and as a ctest entry. Each check
encodes an invariant the general-purpose tools cannot see:

  header-budget      Engine headers (src/mapreduce/*.h) stay under a line
                     budget, so the engine keeps decomposing into layers
                     instead of re-growing a monolith. Documented
                     exemptions live in HEADER_BUDGET_EXEMPT.
  determinism        No fork/rand/wall-clock nondeterminism outside the
                     whitelisted files. The engine's contract is
                     byte-identical results across thread counts, shuffle
                     modes, budgets, and backends; one stray
                     random_device or system_clock in a kernel breaks it
                     silently.
  env-doc            Every SMR_* environment variable read anywhere in
                     the tree is documented in README.md. Env knobs are
                     public surface; an undocumented one is a trap.
  strategy-coverage  Every strategy registered in
                     src/core/builtin_strategies.cc is named in
                     tests/strategy_registry_test.cc, whose pinned-roster
                     test and per-strategy loops are the differential
                     coverage every strategy must pass through.
  intersect-slack    Every file calling IntersectInto() also references
                     kIntersectSlack. The SIMD intersection kernels may
                     write up to kIntersectSlack lanes past the true
                     result size; a caller sizing its buffer without the
                     slack is a latent overflow that only fires on
                     AVX-capable hosts (see src/graph/intersect.h).

Usage:
  tools/smr_lint.py [--root DIR] [--format text|markdown] [--self-test]

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.

--self-test runs every check against the seeded-violation corpus in
tools/lint_fixtures/ and verifies each check fires on its fixture —
proof the checks detect what they claim to detect.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Configuration
# --------------------------------------------------------------------------

HEADER_BUDGET_LINES = 400

# Documented exemptions from the engine-header budget: path -> reason.
HEADER_BUDGET_EXEMPT = {
    "src/mapreduce/process_backend.h":
        "single-coordinator process backend; PR 9 rebuilt it as one "
        "header-only state machine on purpose (fork/exec lifecycle, "
        "retry bookkeeping, and drain loop are one indivisible unit)",
}

# Nondeterminism sources and the files allowed to use each. Patterns are
# regexes matched per line; comment-only lines are skipped first.
DETERMINISM_BANS = [
    (r"\bv?fork\s*\(", {"src/mapreduce/process_backend.cc"},
     "fork() belongs to the process backend's coordinator only"),
    (r"\bstd::rand\b|\bsrand\s*\(", set(),
     "use util/rng.h (seeded SplitMix64), never the libc generator"),
    (r"\brandom_device\b", set(),
     "nondeterministic seeding breaks byte-identical reruns"),
    (r"\bsystem_clock\b", set(),
     "wall-clock time must not influence results; deadlines poll fds"),
    (r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)", set(),
     "wall-clock time must not influence results"),
    (r"\bmt19937\b", set(),
     "use util/rng.h so all randomness flows from one seeded generator"),
]

# Trees scanned by the determinism check. tests/ and bench/ are out of
# scope: tests may fake clocks, and bench harnesses own their (seeded)
# mt19937 input generators — only shipped engine/kernel/example code must
# be free of nondeterminism sources.
DETERMINISM_SCAN_DIRS = ("src", "examples")
DETERMINISM_EXTENSIONS = (".h", ".cc", ".cpp")

# Files that declare the intersection kernels themselves.
INTERSECT_IMPL_FILES = {"src/graph/intersect.h", "src/graph/intersect.cc"}

ENV_VAR_RE = re.compile(r"getenv\s*\(\s*\"(SMR_[A-Z0-9_]+)\"")
STRATEGY_NAME_RE = re.compile(r"BuiltinStrategy\(\s*\"([a-z0-9-]+)\"", re.S)
LINE_COMMENT_RE = re.compile(r"//.*$")


class Finding:
    def __init__(self, check, path, line, message):
        self.check = check
        self.path = path
        self.line = line  # 1-based, or 0 for file-level findings
        self.message = message

    def __str__(self):
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.check}] {self.message}"


def read_lines(path):
    with open(path, encoding="utf-8", errors="replace") as f:
        return f.read().splitlines()


def walk_sources(root, subdirs, extensions):
    for subdir in subdirs:
        base = os.path.join(root, subdir)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(extensions):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


# --------------------------------------------------------------------------
# Checks — each takes the repo root and returns a list of Findings.
# --------------------------------------------------------------------------

def check_header_budget(root, budget=HEADER_BUDGET_LINES):
    findings = []
    for rel in walk_sources(root, ("src/mapreduce",), (".h",)):
        count = len(read_lines(os.path.join(root, rel)))
        if count <= budget:
            continue
        if rel in HEADER_BUDGET_EXEMPT:
            continue
        findings.append(Finding(
            "header-budget", rel, 0,
            f"{count} lines exceeds the {budget}-line engine-header "
            f"budget; split a layer out or add a documented exemption"))
    return findings


def check_determinism(root):
    findings = []
    for rel in walk_sources(root, DETERMINISM_SCAN_DIRS,
                            DETERMINISM_EXTENSIONS):
        lines = read_lines(os.path.join(root, rel))
        in_block_comment = False
        for number, line in enumerate(lines, start=1):
            code, in_block_comment = strip_comments(line, in_block_comment)
            for pattern, allowed, why in DETERMINISM_BANS:
                if rel in allowed:
                    continue
                if re.search(pattern, code):
                    findings.append(Finding(
                        "determinism", rel, number,
                        f"nondeterminism source /{pattern}/ — {why}"))
    return findings


def strip_comments(line, in_block_comment):
    """Removes //- and /* */-commented spans from one line (stateful across
    lines for block comments). String literals are not parsed; the banned
    identifiers do not plausibly appear inside strings in this codebase."""
    out = []
    i = 0
    while i < len(line):
        if in_block_comment:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
        elif line.startswith("//", i):
            break
        elif line.startswith("/*", i):
            in_block_comment = True
            i += 2
        else:
            out.append(line[i])
            i += 1
    return "".join(out), in_block_comment


def check_env_doc(root):
    findings = []
    readme_path = os.path.join(root, "README.md")
    readme = ""
    if os.path.exists(readme_path):
        readme = "\n".join(read_lines(readme_path))
    for rel in walk_sources(root, ("src", "examples", "bench", "tests"),
                            DETERMINISM_EXTENSIONS):
        lines = read_lines(os.path.join(root, rel))
        for number, line in enumerate(lines, start=1):
            for var in ENV_VAR_RE.findall(line):
                if var not in readme:
                    findings.append(Finding(
                        "env-doc", rel, number,
                        f"environment variable {var} is read here but "
                        f"not documented in README.md"))
    return findings


def check_strategy_coverage(root):
    registry = os.path.join(root, "src/core/builtin_strategies.cc")
    coverage = os.path.join(root, "tests/strategy_registry_test.cc")
    if not os.path.exists(registry):
        return []
    names = STRATEGY_NAME_RE.findall(
        "\n".join(read_lines(registry)))
    covered = ""
    if os.path.exists(coverage):
        covered = "\n".join(read_lines(coverage))
    findings = []
    for name in names:
        if f'"{name}"' not in covered:
            findings.append(Finding(
                "strategy-coverage", "src/core/builtin_strategies.cc", 0,
                f"strategy '{name}' is registered but never named in "
                f"tests/strategy_registry_test.cc (add it to the pinned "
                f"roster test)"))
    return findings


def check_intersect_slack(root):
    findings = []
    for rel in walk_sources(root, ("src",), (".h", ".cc")):
        if rel in INTERSECT_IMPL_FILES:
            continue
        text = "\n".join(read_lines(os.path.join(root, rel)))
        if "IntersectInto" in text and "kIntersectSlack" not in text:
            findings.append(Finding(
                "intersect-slack", rel, 0,
                "calls IntersectInto() but never references "
                "kIntersectSlack — output buffers must reserve "
                "min(|a|,|b|) + kIntersectSlack elements "
                "(see src/graph/intersect.h)"))
    return findings


ALL_CHECKS = [
    check_header_budget,
    check_determinism,
    check_env_doc,
    check_strategy_coverage,
    check_intersect_slack,
]


def run_checks(root):
    findings = []
    for check in ALL_CHECKS:
        findings.extend(check(root))
    return findings


# --------------------------------------------------------------------------
# Self-test against the seeded-violation corpus
# --------------------------------------------------------------------------

# check id -> substring that must appear in at least one finding from the
# fixture tree. Each fixture seeds exactly one violation of its check.
FIXTURE_EXPECTATIONS = {
    "header-budget": "exceeds",
    "determinism": "fork",
    "env-doc": "SMR_UNDOCUMENTED_KNOB",
    "strategy-coverage": "'ghost'",
    "intersect-slack": "IntersectInto",
}


def self_test(fixtures_root):
    # The fixture header is kept short; prove the budget check with a
    # proportionally short budget instead of a 400-line junk file.
    findings = check_header_budget(fixtures_root, budget=10)
    for check in ALL_CHECKS[1:]:
        findings.extend(check(fixtures_root))
    failures = []
    for check_id, needle in sorted(FIXTURE_EXPECTATIONS.items()):
        hits = [f for f in findings
                if f.check == check_id and needle in f.message]
        if not hits:
            failures.append(
                f"self-test: check '{check_id}' did not fire on its "
                f"seeded fixture (expected a finding mentioning "
                f"'{needle}')")
    for f in findings:
        if f.check not in FIXTURE_EXPECTATIONS:
            failures.append(f"self-test: unexpected check id in {f}")
    if failures:
        print("\n".join(failures))
        return 1
    print(f"self-test: all {len(FIXTURE_EXPECTATIONS)} checks fire on "
          f"their seeded fixtures ({len(findings)} findings)")
    return 0


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------

def emit(findings, fmt):
    if fmt == "markdown":
        print("| check | location | finding |")
        print("| --- | --- | --- |")
        for f in findings:
            where = f"{f.path}:{f.line}" if f.line else f.path
            message = f.message.replace("|", "\\|")
            print(f"| {f.check} | `{where}` | {message} |")
    else:
        for f in findings:
            print(f)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: the linter's "
                             "grandparent directory)")
    parser.add_argument("--format", choices=("text", "markdown"),
                        default="text")
    parser.add_argument("--self-test", action="store_true",
                        help="run the checks against tools/lint_fixtures/ "
                             "and verify every check fires")
    args = parser.parse_args(argv)

    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root) if args.root else os.path.dirname(here)

    if args.self_test:
        return self_test(os.path.join(here, "lint_fixtures"))

    findings = run_checks(root)
    emit(findings, args.format)
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    if args.format != "markdown":
        print("smr_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
