// Fixture: the coverage test names "covered" but not the ghost strategy.
const char* kFixtureRoster[] = {"covered"};
