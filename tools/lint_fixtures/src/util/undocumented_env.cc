// Fixture: an SMR_* environment knob the fixture README never documents.
#include <cstdlib>

bool FixtureKnobEnabled() {
  // SMR_DOCUMENTED_KNOB is documented in the fixture README and must not
  // be flagged; the other one is the seeded violation.
  if (std::getenv("SMR_DOCUMENTED_KNOB") != nullptr) return true;
  return std::getenv("SMR_UNDOCUMENTED_KNOB") != nullptr;
}
