// Fixture: an engine header that blows the (self-test-scaled) budget.
#ifndef FIXTURE_OVERSIZED_HEADER_H_
#define FIXTURE_OVERSIZED_HEADER_H_
inline int FixturePadding0() { return 0; }
inline int FixturePadding1() { return 1; }
inline int FixturePadding2() { return 2; }
inline int FixturePadding3() { return 3; }
inline int FixturePadding4() { return 4; }
inline int FixturePadding5() { return 5; }
inline int FixturePadding6() { return 6; }
inline int FixturePadding7() { return 7; }
inline int FixturePadding8() { return 8; }
inline int FixturePadding9() { return 9; }
inline int FixturePadding10() { return 10; }
inline int FixturePadding11() { return 11; }
#endif  // FIXTURE_OVERSIZED_HEADER_H_
