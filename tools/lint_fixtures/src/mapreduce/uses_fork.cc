// Fixture: nondeterminism outside the whitelist. Only the live fork()
// below may fire; the mentions of fork() in this comment block and the
// /* fork( */ span must be stripped before matching.
#include <unistd.h>

int FixtureSpawn() {
  /* not a real call: fork( */
  const int pid = fork();  // seeded violation: only process_backend.cc may
  return pid;
}
