// Fixture: a strategy registry with one covered and one uncovered name.
struct BuiltinStrategy {
  BuiltinStrategy(const char*, const char*) {}
};

void FixtureRegister() {
  // Same shape as the real registry: the name is the constructor's first
  // string literal.
  (void)BuiltinStrategy(
      "covered",
      "named in the fixture strategy_registry_test.cc, must not be flagged");
  (void)BuiltinStrategy(
      "ghost",
      "seeded violation: registered but absent from the coverage test");
}
