// Fixture: an IntersectInto() caller that sizes its buffer without the
// required slack reserve (seeded violation — naming the slack constant
// anywhere in this file, even in a comment, would defuse the check).
#include <cstddef>
#include <vector>

std::size_t IntersectInto(const int*, std::size_t, const int*, std::size_t,
                          int*);

std::size_t FixtureIntersect(const std::vector<int>& a,
                             const std::vector<int>& b) {
  std::vector<int> out(a.size() < b.size() ? a.size() : b.size());
  return IntersectInto(a.data(), a.size(), b.data(), b.size(), out.data());
}
